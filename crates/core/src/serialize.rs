//! Binary serialization of released models.
//!
//! The paper's deployment story (Sec. IV-C6) is that a server *publishes*
//! the trained `Θ_priv` — the privacy guarantee covers exactly this release.
//! A downstream user therefore needs a durable on-disk representation of
//! [`TrainedGcon`]: the parameters, the (public) feature encoder, the full
//! hyperparameter configuration, and the privacy report documenting what
//! `(ε, δ)` the artifact was trained under.
//!
//! Format: a little-endian tag-free binary layout (`b"GCON"` magic +
//! version), written and parsed with the `bytes` crate. Decoding is
//! fail-closed: any truncation, bad magic, unknown enum tag or non-finite
//! dimension yields a [`DecodeError`] instead of a partially-built model.
//! Since version 3 the same container also carries a second artifact kind —
//! a persisted serving feature store ([`StoreArtifact`], written by
//! `gcon-serve`'s `ServingModel::save`) whose matrix payloads are 8-byte
//! aligned relative to the stream start, so a later `mmap` of the file can
//! point at them zero-copy.
//!
//! This module is also the byte-level trust boundary of the `gcond` wire
//! protocol: the primitive readers ([`get_u8`] … [`get_f64`]) are public so
//! `gcon-serve::wire` parses network frames with exactly the same
//! fail-closed discipline, and every decode path bounds its allocations by
//! the bytes actually present (a hostile header cannot provoke an
//! oversized allocation, let alone a panic).

use crate::encoder::EncoderConfig;
use crate::encoder::FeatureEncoder;
use crate::loss::LossKind;
use crate::model::{GconConfig, OptimizerConfig, PrivacyReport, TrainedGcon};
use crate::params::TheoremOneParams;
use crate::propagation::{PprSolver, PropagationStep};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use gcon_linalg::Mat;
use gcon_nn::{Activation, Linear, Mlp};

/// Magic prefix of the format.
pub const MAGIC: &[u8; 4] = b"GCON";
/// Current format version. Version 2 added the `ppr_solver` tag to the
/// configuration block; version 3 added an artifact-kind tag after the
/// version so the container can also carry a persisted serving feature
/// store ([`StoreArtifact`]) with 8-byte-aligned payloads. Version-1/2
/// streams still decode (v1 defaults the solver to `PprSolver::Auto`).
pub const VERSION: u16 = 3;
/// Oldest format version [`from_bytes`] still decodes.
pub const MIN_VERSION: u16 = 1;

/// Artifact-kind tag of a v3 stream: a trained model ([`TrainedGcon`]).
pub const ARTIFACT_MODEL: u8 = 0;
/// Artifact-kind tag of a v3 stream: a serving store ([`StoreArtifact`]).
pub const ARTIFACT_STORE: u8 = 1;

/// Why a byte stream failed to decode into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the structure was complete.
    Truncated,
    /// The stream does not start with the `GCON` magic.
    BadMagic,
    /// The format version lies outside the `MIN_VERSION..=VERSION` range
    /// this library understands.
    UnsupportedVersion(u16),
    /// An enum tag had no defined meaning.
    BadTag(&'static str, u8),
    /// A structural invariant failed (dimension mismatch, empty layers, …).
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "byte stream truncated"),
            Self::BadMagic => write!(f, "missing GCON magic prefix"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            Self::BadTag(what, t) => write!(f, "invalid {what} tag {t}"),
            Self::Invalid(what) => write!(f, "structural invariant violated: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ------------------------------------------------------------- primitives

/// Checked dimension/length encode: the format stores matrix dimensions and
/// vector lengths as `u32`, so a value that does not fit would previously
/// truncate silently (`as u32`) and round-trip to a *different*, corrupt
/// object. Encoding is infallible for every representable model, so the
/// overflow case asserts instead of threading a `Result` through every
/// writer.
///
/// # Panics
/// Panics when `n > u32::MAX` (only reachable on 64-bit targets, and only
/// for objects far beyond what the format — or memory — supports).
fn dim_u32(n: usize, what: &str) -> u32 {
    u32::try_from(n).unwrap_or_else(|_| {
        panic!("gcon serialize: {what} = {n} exceeds the format's u32 dimension limit")
    })
}

fn put_mat(buf: &mut BytesMut, m: &Mat) {
    buf.put_u32_le(dim_u32(m.rows(), "matrix rows"));
    buf.put_u32_le(dim_u32(m.cols(), "matrix cols"));
    for &v in m.as_slice() {
        buf.put_f64_le(v);
    }
}

/// Reads one byte, fail-closed on truncation.
pub fn get_u8(buf: &mut Bytes) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Reads a little-endian `u16`, fail-closed on truncation.
pub fn get_u16(buf: &mut Bytes) -> Result<u16, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u16_le())
}

/// Reads a little-endian `u32`, fail-closed on truncation.
pub fn get_u32(buf: &mut Bytes) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u32_le())
}

/// Reads a little-endian `u64`, fail-closed on truncation.
pub fn get_u64(buf: &mut Bytes) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u64_le())
}

/// Reads a little-endian `f64`, fail-closed on truncation.
pub fn get_f64(buf: &mut Bytes) -> Result<f64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_f64_le())
}

/// Reads a little-endian `f32`, fail-closed on truncation.
pub fn get_f32(buf: &mut Bytes) -> Result<f32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_f32_le())
}

/// Checks that `count` elements of `elem_size` bytes are actually present
/// before any allocation happens. The arithmetic is checked: a hostile
/// header advertising `u32::MAX × u32::MAX` elements must yield
/// `Err(Truncated)` here, not an overflowed length that slips past the
/// bounds check into a giant `Vec::with_capacity`.
fn check_payload(buf: &Bytes, count: usize, elem_size: usize) -> Result<(), DecodeError> {
    let bytes = count.checked_mul(elem_size).ok_or(DecodeError::Truncated)?;
    if buf.remaining() < bytes {
        return Err(DecodeError::Truncated);
    }
    Ok(())
}

fn get_mat(buf: &mut Bytes) -> Result<Mat, DecodeError> {
    let rows = get_u32(buf)? as usize;
    let cols = get_u32(buf)? as usize;
    let len = rows.checked_mul(cols).ok_or(DecodeError::Invalid("matrix dimensions overflow"))?;
    check_payload(buf, len, 8)?;
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(buf.get_f64_le());
    }
    Ok(Mat::from_vec(rows, cols, data))
}

fn put_vec_f64(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u32_le(dim_u32(v.len(), "vector length"));
    for &x in v {
        buf.put_f64_le(x);
    }
}

fn get_vec_f64(buf: &mut Bytes) -> Result<Vec<f64>, DecodeError> {
    let len = get_u32(buf)? as usize;
    check_payload(buf, len, 8)?;
    Ok((0..len).map(|_| buf.get_f64_le()).collect())
}

// ------------------------------------------------------------ components

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::Relu => 0,
        Activation::Tanh => 1,
        Activation::Sigmoid => 2,
        Activation::Identity => 3,
    }
}

fn activation_from_tag(t: u8) -> Result<Activation, DecodeError> {
    Ok(match t {
        0 => Activation::Relu,
        1 => Activation::Tanh,
        2 => Activation::Sigmoid,
        3 => Activation::Identity,
        _ => return Err(DecodeError::BadTag("activation", t)),
    })
}

fn put_linear(buf: &mut BytesMut, l: &Linear) {
    put_mat(buf, &l.w);
    put_vec_f64(buf, &l.b);
}

fn get_linear(buf: &mut Bytes) -> Result<Linear, DecodeError> {
    let w = get_mat(buf)?;
    let b = get_vec_f64(buf)?;
    if b.len() != w.cols() {
        return Err(DecodeError::Invalid("linear bias length"));
    }
    Ok(Linear { w, b })
}

fn put_mlp(buf: &mut BytesMut, net: &Mlp) {
    buf.put_u32_le(dim_u32(net.layers.len(), "MLP depth"));
    for l in &net.layers {
        put_linear(buf, l);
    }
    let (h, o) = net.activations();
    buf.put_u8(activation_tag(h));
    buf.put_u8(activation_tag(o));
}

fn get_mlp(buf: &mut Bytes) -> Result<Mlp, DecodeError> {
    let depth = get_u32(buf)? as usize;
    if depth == 0 {
        return Err(DecodeError::Invalid("empty MLP"));
    }
    let mut layers = Vec::with_capacity(depth);
    for _ in 0..depth {
        layers.push(get_linear(buf)?);
    }
    for w in layers.windows(2) {
        if w[0].d_out() != w[1].d_in() {
            return Err(DecodeError::Invalid("MLP layer dims do not chain"));
        }
    }
    let h = activation_from_tag(get_u8(buf)?)?;
    let o = activation_from_tag(get_u8(buf)?)?;
    Ok(Mlp::from_parts(layers, h, o))
}

fn put_step(buf: &mut BytesMut, s: PropagationStep) {
    match s {
        PropagationStep::Finite(m) => {
            buf.put_u8(0);
            buf.put_u64_le(m as u64);
        }
        PropagationStep::Infinite => buf.put_u8(1),
    }
}

fn get_step(buf: &mut Bytes) -> Result<PropagationStep, DecodeError> {
    match get_u8(buf)? {
        0 => Ok(PropagationStep::Finite(get_u64(buf)? as usize)),
        1 => Ok(PropagationStep::Infinite),
        t => Err(DecodeError::BadTag("propagation step", t)),
    }
}

fn put_loss(buf: &mut BytesMut, l: LossKind) {
    match l {
        LossKind::MultiLabelSoftMargin => buf.put_u8(0),
        LossKind::PseudoHuber { delta } => {
            buf.put_u8(1);
            buf.put_f64_le(delta);
        }
    }
}

fn get_loss(buf: &mut Bytes) -> Result<LossKind, DecodeError> {
    match get_u8(buf)? {
        0 => Ok(LossKind::MultiLabelSoftMargin),
        1 => Ok(LossKind::PseudoHuber { delta: get_f64(buf)? }),
        t => Err(DecodeError::BadTag("loss kind", t)),
    }
}

fn put_config(buf: &mut BytesMut, cfg: &GconConfig, version: u16) {
    buf.put_u64_le(cfg.encoder.hidden as u64);
    buf.put_u64_le(cfg.encoder.d1 as u64);
    buf.put_u64_le(cfg.encoder.epochs as u64);
    buf.put_f64_le(cfg.encoder.lr);
    buf.put_f64_le(cfg.encoder.weight_decay);
    buf.put_f64_le(cfg.alpha);
    buf.put_u32_le(dim_u32(cfg.steps.len(), "step count"));
    for &s in &cfg.steps {
        put_step(buf, s);
    }
    buf.put_f64_le(cfg.lambda);
    put_loss(buf, cfg.loss);
    buf.put_f64_le(cfg.omega);
    buf.put_f64_le(cfg.alpha_inference);
    buf.put_u8(cfg.expand_train_set as u8);
    buf.put_f64_le(cfg.clip_p);
    if version >= 2 {
        buf.put_u8(match cfg.ppr_solver {
            PprSolver::Auto => 0,
            PprSolver::Power => 1,
            PprSolver::Cgnr => 2,
            PprSolver::Push => 3,
        });
    }
    buf.put_f64_le(cfg.optimizer.lr);
    buf.put_u64_le(cfg.optimizer.max_iters as u64);
    buf.put_f64_le(cfg.optimizer.grad_tol);
}

fn get_config(buf: &mut Bytes, version: u16) -> Result<GconConfig, DecodeError> {
    let encoder = EncoderConfig {
        hidden: get_u64(buf)? as usize,
        d1: get_u64(buf)? as usize,
        epochs: get_u64(buf)? as usize,
        lr: get_f64(buf)?,
        weight_decay: get_f64(buf)?,
    };
    let alpha = get_f64(buf)?;
    let num_steps = get_u32(buf)? as usize;
    let mut steps = Vec::with_capacity(num_steps);
    for _ in 0..num_steps {
        steps.push(get_step(buf)?);
    }
    let lambda = get_f64(buf)?;
    let loss = get_loss(buf)?;
    let omega = get_f64(buf)?;
    let alpha_inference = get_f64(buf)?;
    let expand_train_set = match get_u8(buf)? {
        0 => false,
        1 => true,
        t => return Err(DecodeError::BadTag("bool", t)),
    };
    let clip_p = get_f64(buf)?;
    // Version 1 predates the solver tag; those models used what is now the
    // Auto selection.
    let ppr_solver = if version >= 2 {
        match get_u8(buf)? {
            0 => PprSolver::Auto,
            1 => PprSolver::Power,
            2 => PprSolver::Cgnr,
            3 => PprSolver::Push,
            t => return Err(DecodeError::BadTag("ppr solver", t)),
        }
    } else {
        PprSolver::Auto
    };
    let optimizer = OptimizerConfig {
        lr: get_f64(buf)?,
        max_iters: get_u64(buf)? as usize,
        grad_tol: get_f64(buf)?,
    };
    Ok(GconConfig {
        encoder,
        alpha,
        steps,
        lambda,
        loss,
        omega,
        alpha_inference,
        expand_train_set,
        clip_p,
        ppr_solver,
        optimizer,
    })
}

fn put_report(buf: &mut BytesMut, r: &PrivacyReport) {
    buf.put_f64_le(r.eps);
    buf.put_f64_le(r.delta);
    buf.put_f64_le(r.psi_z);
    buf.put_f64_le(r.params.lambda_eff);
    buf.put_f64_le(r.params.csf);
    buf.put_f64_le(r.params.c_theta);
    buf.put_f64_le(r.params.eps_lambda);
    buf.put_f64_le(r.params.lambda_prime);
    buf.put_f64_le(r.params.beta);
    buf.put_u64_le(r.n1 as u64);
}

fn get_report(buf: &mut Bytes) -> Result<PrivacyReport, DecodeError> {
    Ok(PrivacyReport {
        eps: get_f64(buf)?,
        delta: get_f64(buf)?,
        psi_z: get_f64(buf)?,
        params: TheoremOneParams {
            lambda_eff: get_f64(buf)?,
            csf: get_f64(buf)?,
            c_theta: get_f64(buf)?,
            eps_lambda: get_f64(buf)?,
            lambda_prime: get_f64(buf)?,
            beta: get_f64(buf)?,
        },
        n1: get_u64(buf)? as usize,
    })
}

// --------------------------------------------------------------- toplevel

/// Serializes a trained model to its binary representation (the current
/// [`VERSION`]).
pub fn to_bytes(model: &TrainedGcon) -> Bytes {
    to_bytes_versioned(model, VERSION)
}

/// [`to_bytes`] at an explicit format version; older versions drop the
/// fields they predate. Used by the compatibility tests.
fn to_bytes_versioned(model: &TrainedGcon, version: u16) -> Bytes {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    if version >= 3 {
        buf.put_u8(ARTIFACT_MODEL);
    }
    put_mat(&mut buf, &model.theta);
    put_mlp(&mut buf, &model.encoder.net);
    put_linear(&mut buf, &model.encoder.head);
    put_config(&mut buf, &model.config, version);
    put_report(&mut buf, &model.report);
    buf.put_u64_le(model.num_classes as u64);
    buf.put_u64_le(model.opt_iterations as u64);
    buf.put_f64_le(model.final_grad_norm);
    buf.freeze()
}

/// Decodes a model from bytes produced by [`to_bytes`] — any format version
/// in `MIN_VERSION..=VERSION`. Fail-closed.
pub fn from_bytes(bytes: &[u8]) -> Result<TrainedGcon, DecodeError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = get_u16(&mut buf)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    // Version 3 introduced the artifact-kind tag; earlier streams are
    // implicitly trained models.
    if version >= 3 {
        match get_u8(&mut buf)? {
            ARTIFACT_MODEL => {}
            ARTIFACT_STORE => return Err(DecodeError::Invalid("artifact is a serving store")),
            t => return Err(DecodeError::BadTag("artifact kind", t)),
        }
    }
    let theta = get_mat(&mut buf)?;
    let net = get_mlp(&mut buf)?;
    let head = get_linear(&mut buf)?;
    let config = get_config(&mut buf, version)?;
    let report = get_report(&mut buf)?;
    let num_classes = get_u64(&mut buf)? as usize;
    let opt_iterations = get_u64(&mut buf)? as usize;
    let final_grad_norm = get_f64(&mut buf)?;

    if theta.cols() != num_classes {
        return Err(DecodeError::Invalid("theta columns vs class count"));
    }
    if head.d_out() != num_classes {
        return Err(DecodeError::Invalid("encoder head vs class count"));
    }
    let d1 = net.layers.last().expect("validated non-empty").d_out();
    if head.d_in() != d1 {
        return Err(DecodeError::Invalid("encoder head vs embedding dim"));
    }
    if theta.rows() != config.steps.len() * d1 {
        return Err(DecodeError::Invalid("theta rows vs s·d₁"));
    }

    Ok(TrainedGcon {
        theta,
        encoder: FeatureEncoder { net, head },
        config,
        report,
        num_classes,
        opt_iterations,
        final_grad_norm,
    })
}

// ---------------------------------------------- serving-store artifact (v3)

/// The matrix payloads of a persisted serving store, in the dtype the store
/// was frozen in (`gcon-serve::StoreDtype`). `store` is the propagated
/// feature matrix (`n × d`, already `1/s`-scaled), `theta` the released
/// parameters (`d × c`); both round-trip bitwise.
#[derive(Clone, Debug)]
pub enum StoreArtifact {
    /// Double-precision store + parameters (the exact-serving default).
    F64 {
        /// Propagated feature store, `n × d`.
        store: Mat,
        /// Released parameters `Θ_priv`, `d × c`.
        theta: Mat,
    },
    /// Single-precision store + parameters (the quantized fast path).
    F32 {
        /// Quantized feature store, `n × d`.
        store: Mat<f32>,
        /// Quantized `Θ_priv`, `d × c`.
        theta: Mat<f32>,
    },
}

impl StoreArtifact {
    /// `(rows, feature_dim, classes)` of the persisted store.
    pub fn shape(&self) -> (usize, usize, usize) {
        match self {
            StoreArtifact::F64 { store, theta } => (store.rows(), store.cols(), theta.cols()),
            StoreArtifact::F32 { store, theta } => (store.rows(), store.cols(), theta.cols()),
        }
    }

    /// The **store-slice artifact**: rows `start..end` of the feature store
    /// together with the full `theta` (every shard needs the whole head).
    /// The slice is a bitwise copy — no arithmetic, no re-quantization — so
    /// a shard serving rows `start..end` of the slice answers exactly what
    /// the unsliced store answers for those rows. This is the shard-handoff
    /// payload of the fleet layer: encode the slice with
    /// [`store_to_bytes`], ship it, and the worker decodes a perfectly
    /// ordinary (smaller) v3 store artifact.
    ///
    /// # Panics
    /// Panics if `start > end` or `end` exceeds the store's row count —
    /// slicing is a coordinator-side operation over trusted shapes, not a
    /// decode surface.
    pub fn slice_rows(&self, start: usize, end: usize) -> StoreArtifact {
        let rows = self.shape().0;
        assert!(
            start <= end && end <= rows,
            "StoreArtifact::slice_rows: range {start}..{end} out of bounds for {rows} rows"
        );
        match self {
            StoreArtifact::F64 { store, theta } => {
                let d = store.cols();
                StoreArtifact::F64 {
                    store: Mat::from_vec(
                        end - start,
                        d,
                        store.as_slice()[start * d..end * d].to_vec(),
                    ),
                    theta: theta.clone(),
                }
            }
            StoreArtifact::F32 { store, theta } => {
                let d = store.cols();
                StoreArtifact::F32 {
                    store: Mat::from_vec(
                        end - start,
                        d,
                        store.as_slice()[start * d..end * d].to_vec(),
                    ),
                    theta: theta.clone(),
                }
            }
        }
    }

    fn dtype_tag(&self) -> u8 {
        match self {
            StoreArtifact::F64 { .. } => 0,
            StoreArtifact::F32 { .. } => 1,
        }
    }
}

/// A persisted serving store plus the serving-mode tag `gcon-serve` stamps
/// on it (0 = public, 1 = private; opaque to this crate — round-tripped,
/// not interpreted).
#[derive(Clone, Debug)]
pub struct PersistedStore {
    /// Serving-mode tag (`gcon-serve::ServingMode`).
    pub mode_tag: u8,
    /// The store + parameter payloads.
    pub data: StoreArtifact,
}

impl PersistedStore {
    /// [`StoreArtifact::slice_rows`] with the mode tag carried along — the
    /// encodable shard-handoff slice.
    pub fn slice_rows(&self, start: usize, end: usize) -> PersistedStore {
        PersistedStore { mode_tag: self.mode_tag, data: self.data.slice_rows(start, end) }
    }
}

/// Pads `buf` with zero bytes until its length is a multiple of 8, so the
/// bytes that follow start 8-byte aligned **relative to the stream start**.
/// `mmap` returns page-aligned bases, so file-relative alignment is
/// pointer alignment — a future reader can point an `&[f64]` (or `&[f32]`)
/// straight at the mapped payload without copying.
fn pad_to_8(buf: &mut BytesMut) {
    while !buf.len().is_multiple_of(8) {
        buf.put_u8(0);
    }
}

/// Skips the padding [`pad_to_8`] wrote: `total_len` is the full stream
/// length, from which the cursor's absolute position is recovered.
fn skip_pad_to_8(buf: &mut Bytes, total_len: usize) -> Result<(), DecodeError> {
    let pos = total_len - buf.remaining();
    let pad = (8 - pos % 8) % 8;
    if buf.remaining() < pad {
        return Err(DecodeError::Truncated);
    }
    for _ in 0..pad {
        buf.get_u8();
    }
    Ok(())
}

/// Serializes a serving store to the v3 container (`GCON` magic, version,
/// [`ARTIFACT_STORE`] tag, header, then the 8-byte-aligned store and theta
/// payloads). Layout after the tag:
///
/// ```text
/// u8  mode_tag        u8  dtype_tag (0 = f64, 1 = f32)
/// u64 store_rows      u32 store_cols      u32 theta_cols
/// ..  zero padding to the next 8-byte boundary (stream-relative)
/// ..  store payload   (rows·cols elements, little-endian)
/// ..  zero padding to the next 8-byte boundary
/// ..  theta payload   (cols·classes elements, little-endian)
/// ```
pub fn store_to_bytes(persisted: &PersistedStore) -> Bytes {
    let (rows, d, c) = persisted.data.shape();
    let elem = match persisted.data {
        StoreArtifact::F64 { .. } => 8,
        StoreArtifact::F32 { .. } => 4,
    };
    let mut buf = BytesMut::with_capacity(64 + (rows * d + d * c) * elem);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u8(ARTIFACT_STORE);
    buf.put_u8(persisted.mode_tag);
    buf.put_u8(persisted.data.dtype_tag());
    buf.put_u64_le(rows as u64);
    buf.put_u32_le(dim_u32(d, "store cols"));
    buf.put_u32_le(dim_u32(c, "theta cols"));
    match &persisted.data {
        StoreArtifact::F64 { store, theta } => {
            pad_to_8(&mut buf);
            for &v in store.as_slice() {
                buf.put_f64_le(v);
            }
            pad_to_8(&mut buf);
            for &v in theta.as_slice() {
                buf.put_f64_le(v);
            }
        }
        StoreArtifact::F32 { store, theta } => {
            pad_to_8(&mut buf);
            for &v in store.as_slice() {
                buf.put_f32_le(v);
            }
            pad_to_8(&mut buf);
            for &v in theta.as_slice() {
                buf.put_f32_le(v);
            }
        }
    }
    buf.freeze()
}

/// Decodes a serving store from bytes produced by [`store_to_bytes`].
/// Fail-closed exactly like [`from_bytes`]: truncation, bad magic, a
/// model-artifact stream, hostile dimensions — every failure is an `Err`,
/// never a panic or an allocation beyond the bytes actually present.
pub fn store_from_bytes(bytes: &[u8]) -> Result<PersistedStore, DecodeError> {
    let total_len = bytes.len();
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = get_u16(&mut buf)?;
    // Store artifacts only exist from v3 on.
    if !(3..=VERSION).contains(&version) {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    match get_u8(&mut buf)? {
        ARTIFACT_STORE => {}
        ARTIFACT_MODEL => return Err(DecodeError::Invalid("artifact is a trained model")),
        t => return Err(DecodeError::BadTag("artifact kind", t)),
    }
    let mode_tag = get_u8(&mut buf)?;
    if mode_tag > 1 {
        return Err(DecodeError::BadTag("serving mode", mode_tag));
    }
    let dtype_tag = get_u8(&mut buf)?;
    let rows = usize::try_from(get_u64(&mut buf)?).map_err(|_| DecodeError::Truncated)?;
    let d = get_u32(&mut buf)? as usize;
    let c = get_u32(&mut buf)? as usize;
    let store_len = rows.checked_mul(d).ok_or(DecodeError::Invalid("store dimensions overflow"))?;
    let theta_len = d.checked_mul(c).ok_or(DecodeError::Invalid("theta dimensions overflow"))?;
    let data = match dtype_tag {
        0 => {
            skip_pad_to_8(&mut buf, total_len)?;
            check_payload(&buf, store_len, 8)?;
            let store = Mat::from_vec(rows, d, (0..store_len).map(|_| buf.get_f64_le()).collect());
            skip_pad_to_8(&mut buf, total_len)?;
            check_payload(&buf, theta_len, 8)?;
            let theta = Mat::from_vec(d, c, (0..theta_len).map(|_| buf.get_f64_le()).collect());
            StoreArtifact::F64 { store, theta }
        }
        1 => {
            skip_pad_to_8(&mut buf, total_len)?;
            check_payload(&buf, store_len, 4)?;
            let store = Mat::from_vec(rows, d, (0..store_len).map(|_| buf.get_f32_le()).collect());
            skip_pad_to_8(&mut buf, total_len)?;
            check_payload(&buf, theta_len, 4)?;
            let theta = Mat::from_vec(d, c, (0..theta_len).map(|_| buf.get_f32_le()).collect());
            StoreArtifact::F32 { store, theta }
        }
        t => return Err(DecodeError::BadTag("store dtype", t)),
    };
    Ok(PersistedStore { mode_tag, data })
}

/// Writes a serving store to a file (the `gcon-serve::ServingModel::save`
/// backend).
pub fn save_store(
    persisted: &PersistedStore,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    std::fs::write(path, store_to_bytes(persisted))
}

/// Reads a serving store back from a file. The whole restart cost is this
/// read — O(file size), no propagation.
pub fn load_store(path: impl AsRef<std::path::Path>) -> std::io::Result<PersistedStore> {
    let bytes = std::fs::read(path)?;
    store_from_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes the model to a file.
pub fn save(model: &TrainedGcon, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, to_bytes(model))
}

/// Reads a model back from a file.
pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<TrainedGcon> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::train_gcon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model(seed: u64) -> (TrainedGcon, gcon_graph::Graph, Mat) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, labels) = gcon_graph::generators::sbm_homophily(
            &gcon_graph::generators::SbmConfig {
                n: 50,
                num_edges: 120,
                num_classes: 3,
                homophily: 0.8,
                degree_exponent: 2.5,
            },
            &mut rng,
        );
        let x = Mat::from_fn(50, 6, |i, j| if labels[i] == j % 3 { 1.0 } else { 0.2 });
        let idx: Vec<usize> = (0..25).collect();
        let mut cfg = GconConfig::default();
        cfg.encoder.epochs = 20;
        cfg.optimizer.max_iters = 200;
        cfg.steps = vec![PropagationStep::Finite(1), PropagationStep::Infinite];
        cfg.loss = LossKind::PseudoHuber { delta: 0.3 };
        cfg.ppr_solver = PprSolver::Cgnr;
        let model = train_gcon(&cfg, &g, &x, &labels, &idx, 3, 1.5, 1e-4, &mut rng);
        (model, g, x)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (model, _, _) = trained_model(1);
        let bytes = to_bytes(&model);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.theta.as_slice(), model.theta.as_slice());
        assert_eq!(back.num_classes, model.num_classes);
        assert_eq!(back.opt_iterations, model.opt_iterations);
        assert_eq!(back.final_grad_norm, model.final_grad_norm);
        assert_eq!(back.config.steps, model.config.steps);
        assert_eq!(back.config.clip_p, model.config.clip_p);
        assert_eq!(back.config.loss, model.config.loss);
        assert_eq!(back.config.ppr_solver, model.config.ppr_solver);
        assert_eq!(back.report.eps, model.report.eps);
        assert_eq!(back.report.params.beta, model.report.params.beta);
        assert_eq!(back.report.n1, model.report.n1);
    }

    #[test]
    fn roundtrip_model_predicts_identically() {
        let (model, g, x) = trained_model(2);
        let back = from_bytes(&to_bytes(&model)).unwrap();
        let a = crate::infer::private_logits(&model, &g, &x);
        let b = crate::infer::private_logits(&back, &g, &x);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = crate::infer::public_logits(&model, &g, &x);
        let d = crate::infer::public_logits(&back, &g, &x);
        assert_eq!(c.as_slice(), d.as_slice());
    }

    #[test]
    fn file_roundtrip() {
        let (model, _, _) = trained_model(3);
        let dir = std::env::temp_dir().join("gcon_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gcon");
        save(&model, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.theta.as_slice(), model.theta.as_slice());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let (model, _, _) = trained_model(4);
        let mut bytes = to_bytes(&model).to_vec();
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn future_version_rejected() {
        let (model, _, _) = trained_model(5);
        let mut bytes = to_bytes(&model).to_vec();
        bytes[4] = 0xFF; // version LE low byte
        assert!(matches!(from_bytes(&bytes), Err(DecodeError::UnsupportedVersion(_))));
        let mut bytes = to_bytes(&model).to_vec();
        bytes[4] = 0; // version 0 predates MIN_VERSION
        assert!(matches!(from_bytes(&bytes), Err(DecodeError::UnsupportedVersion(0))));
    }

    /// Version-1 artifacts (published before the `ppr_solver` tag existed)
    /// must keep decoding, with the solver defaulting to `Auto`.
    #[test]
    fn version_one_streams_still_decode() {
        let (mut model, g, x) = trained_model(8);
        // v1 cannot carry a non-default solver; encode the equivalent model.
        model.config.ppr_solver = PprSolver::Auto;
        let v1 = to_bytes_versioned(&model, 1);
        let back = from_bytes(&v1).expect("v1 stream must decode");
        assert_eq!(back.config.ppr_solver, PprSolver::Auto);
        assert_eq!(back.theta.as_slice(), model.theta.as_slice());
        assert_eq!(back.config.steps, model.config.steps);
        let a = crate::infer::private_logits(&model, &g, &x);
        let b = crate::infer::private_logits(&back, &g, &x);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn truncation_rejected_at_every_prefix_length() {
        let (model, _, _) = trained_model(6);
        let bytes = to_bytes(&model);
        // Every strict prefix must fail cleanly (no panic, no partial model).
        for cut in [0, 3, 4, 6, 10, bytes.len() / 2, bytes.len() - 1] {
            let r = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly decoded");
        }
    }

    #[test]
    fn corrupted_enum_tag_rejected() {
        let (model, _, _) = trained_model(7);
        let bytes = to_bytes(&model).to_vec();
        // Scan for the activation tags by decoding successively corrupted
        // copies: flipping any single byte must never panic.
        let stride = (bytes.len() / 64).max(1);
        for i in (0..bytes.len()).step_by(stride) {
            let mut corrupted = bytes.clone();
            corrupted[i] = corrupted[i].wrapping_add(0x7F);
            let _ = from_bytes(&corrupted); // must not panic; Err or Ok both fine
        }
    }

    // ------------------------------------------------ store artifact (v3)

    fn sample_store_f64() -> PersistedStore {
        let store = Mat::from_fn(5, 4, |i, j| (i * 7 + j) as f64 * 0.125 - 1.0);
        let theta = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * -0.25 + 0.5);
        PersistedStore { mode_tag: 1, data: StoreArtifact::F64 { store, theta } }
    }

    fn sample_store_f32() -> PersistedStore {
        let store = Mat::<f32>::from_fn(6, 3, |i, j| (i * 5 + j) as f32 * 0.5 - 2.0);
        let theta = Mat::<f32>::from_fn(3, 2, |i, j| (i * 2 + j) as f32 * 0.75);
        PersistedStore { mode_tag: 0, data: StoreArtifact::F32 { store, theta } }
    }

    #[test]
    fn store_roundtrip_f64_bitwise() {
        let p = sample_store_f64();
        let back = store_from_bytes(&store_to_bytes(&p)).unwrap();
        assert_eq!(back.mode_tag, 1);
        match (&p.data, &back.data) {
            (
                StoreArtifact::F64 { store: s1, theta: t1 },
                StoreArtifact::F64 { store: s2, theta: t2 },
            ) => {
                assert_eq!((s2.rows(), s2.cols()), (5, 4));
                assert_eq!(s1.as_slice(), s2.as_slice());
                assert_eq!(t1.as_slice(), t2.as_slice());
            }
            _ => panic!("dtype changed across roundtrip"),
        }
    }

    #[test]
    fn store_roundtrip_f32_bitwise() {
        let p = sample_store_f32();
        let back = store_from_bytes(&store_to_bytes(&p)).unwrap();
        assert_eq!(back.mode_tag, 0);
        match (&p.data, &back.data) {
            (
                StoreArtifact::F32 { store: s1, theta: t1 },
                StoreArtifact::F32 { store: s2, theta: t2 },
            ) => {
                assert_eq!((s2.rows(), s2.cols()), (6, 3));
                assert_eq!(s1.as_slice(), s2.as_slice());
                assert_eq!(t1.as_slice(), t2.as_slice());
            }
            _ => panic!("dtype changed across roundtrip"),
        }
    }

    /// The store-slice artifact is a bitwise row-range copy: sliced rows
    /// match the original payload exactly, theta rides along whole, and the
    /// slice encodes/decodes as an ordinary v3 store artifact.
    #[test]
    fn store_slice_rows_is_bitwise_and_roundtrips() {
        let p = sample_store_f64();
        let sliced = p.slice_rows(1, 4);
        assert_eq!(sliced.mode_tag, p.mode_tag);
        let (rows, d, c) = sliced.data.shape();
        assert_eq!((rows, d, c), (3, 4, 3));
        let (
            StoreArtifact::F64 { store: full, theta: full_theta },
            StoreArtifact::F64 { store: part, theta: part_theta },
        ) = (&p.data, &sliced.data)
        else {
            panic!("slice changed dtype")
        };
        assert_eq!(part.as_slice(), &full.as_slice()[d..4 * d]);
        assert_eq!(part_theta.as_slice(), full_theta.as_slice());
        let back = store_from_bytes(&store_to_bytes(&sliced)).unwrap();
        let StoreArtifact::F64 { store: back_store, .. } = &back.data else { unreachable!() };
        assert_eq!(back_store.as_slice(), part.as_slice());

        // f32 slices, the full range, and the empty edge all hold too.
        let p32 = sample_store_f32();
        let full32 = p32.slice_rows(0, 6);
        let (StoreArtifact::F32 { store: a, .. }, StoreArtifact::F32 { store: b, .. }) =
            (&p32.data, &full32.data)
        else {
            panic!("slice changed dtype")
        };
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(p32.slice_rows(2, 2).data.shape().0, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn store_slice_rows_rejects_bad_range() {
        sample_store_f64().slice_rows(2, 6);
    }

    /// The store payload must start on an 8-byte file offset so a future
    /// mmap reader can point an `&[f64]` at it zero-copy.
    #[test]
    fn store_payloads_are_8_byte_aligned() {
        let p = sample_store_f64();
        let bytes = store_to_bytes(&p);
        // Fixed header: magic(4) version(2) artifact(1) mode(1) dtype(1)
        // rows(8) store_cols(4) theta_cols(4) = 25 bytes, padded to 32.
        let store_off = 32;
        assert_eq!(store_off % 8, 0);
        let StoreArtifact::F64 { store, .. } = &p.data else { unreachable!() };
        let first = f64::from_le_bytes(bytes[store_off..store_off + 8].try_into().unwrap());
        assert_eq!(first.to_bits(), store.as_slice()[0].to_bits());
        let theta_off = store_off + store.as_slice().len() * 8;
        assert_eq!(theta_off % 8, 0, "theta payload must stay aligned too");
    }

    /// Hostile headers claiming astronomically large payloads must fail
    /// fast with `Err`, not attempt a giant allocation.
    #[test]
    fn store_hostile_dimensions_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u8(ARTIFACT_STORE);
        buf.put_u8(0); // mode
        buf.put_u8(0); // f64
        buf.put_u64_le(u64::MAX); // rows
        buf.put_u32_le(u32::MAX); // store cols
        buf.put_u32_le(u32::MAX); // theta cols
        let bytes = buf.freeze();
        assert!(store_from_bytes(&bytes).is_err());
    }

    #[test]
    fn store_artifact_kinds_do_not_cross_decode() {
        let (model, _, _) = trained_model(9);
        let model_bytes = to_bytes(&model);
        assert!(matches!(store_from_bytes(&model_bytes), Err(DecodeError::Invalid(_))));
        let store_bytes = store_to_bytes(&sample_store_f64());
        assert!(matches!(from_bytes(&store_bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn store_truncation_rejected_at_every_prefix_length() {
        let bytes = store_to_bytes(&sample_store_f64());
        for cut in 0..bytes.len() {
            assert!(
                store_from_bytes(&bytes[..cut]).is_err(),
                "store prefix of {cut} bytes unexpectedly decoded"
            );
        }
    }

    #[test]
    fn store_bad_tags_rejected() {
        let good = store_to_bytes(&sample_store_f64()).to_vec();
        let mut bad_mode = good.clone();
        bad_mode[7] = 9;
        assert!(matches!(store_from_bytes(&bad_mode), Err(DecodeError::BadTag("serving mode", 9))));
        let mut bad_dtype = good.clone();
        bad_dtype[8] = 5;
        assert!(matches!(store_from_bytes(&bad_dtype), Err(DecodeError::BadTag("store dtype", 5))));
    }

    #[test]
    fn store_file_roundtrip() {
        let p = sample_store_f32();
        let dir = std::env::temp_dir().join("gcon_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.gconstore");
        save_store(&p, &path).unwrap();
        let back = load_store(&path).unwrap();
        match (&p.data, &back.data) {
            (
                StoreArtifact::F32 { store: s1, theta: t1 },
                StoreArtifact::F32 { store: s2, theta: t2 },
            ) => {
                assert_eq!(s1.as_slice(), s2.as_slice());
                assert_eq!(t1.as_slice(), t2.as_slice());
            }
            _ => panic!("dtype changed across file roundtrip"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Encoding a dimension that does not fit the format's u32 limit must
    /// abort loudly instead of silently truncating to a corrupt artifact.
    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "u32 dimension limit")]
    fn encode_dimension_overflow_panics() {
        dim_u32(u32::MAX as usize + 1, "test dimension");
    }

    #[test]
    fn encode_dimension_boundary_ok() {
        assert_eq!(dim_u32(u32::MAX as usize, "test dimension"), u32::MAX);
        assert_eq!(dim_u32(0, "test dimension"), 0);
    }

    #[test]
    fn display_of_errors_is_informative() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadTag("loss kind", 9).to_string().contains("loss kind"));
        assert!(DecodeError::UnsupportedVersion(7).to_string().contains('7'));
    }

    mod prop {
        use super::super::*;
        use crate::encoder::FeatureEncoder;
        use gcon_nn::{Activation, Linear, Mlp, MlpConfig};
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        /// Builds a structurally valid TrainedGcon with random shapes and
        /// weights, no training required.
        fn random_model(
            seed: u64,
            d0: usize,
            d1: usize,
            c: usize,
            s: usize,
            huber: bool,
            clip_p: f64,
        ) -> TrainedGcon {
            let mut rng = StdRng::seed_from_u64(seed);
            let net = Mlp::new(
                &MlpConfig {
                    dims: vec![d0, 6, d1],
                    hidden_activation: Activation::Relu,
                    output_activation: Activation::Tanh,
                },
                &mut rng,
            );
            let head = Linear::xavier(d1, c, &mut rng);
            let mut config = GconConfig::default();
            config.encoder.d1 = d1;
            config.clip_p = clip_p;
            config.steps = (0..s)
                .map(|i| {
                    if i == 0 {
                        PropagationStep::Infinite
                    } else {
                        PropagationStep::Finite(i * 2)
                    }
                })
                .collect();
            config.loss = if huber {
                LossKind::PseudoHuber { delta: 0.25 }
            } else {
                LossKind::MultiLabelSoftMargin
            };
            TrainedGcon {
                theta: Mat::gaussian(s * d1, c, 1.0, &mut rng),
                encoder: FeatureEncoder { net, head },
                config,
                report: PrivacyReport {
                    eps: 1.5,
                    delta: 1e-4,
                    psi_z: 0.7,
                    params: TheoremOneParams {
                        lambda_eff: 0.3,
                        csf: 21.0,
                        c_theta: 4.2,
                        eps_lambda: 0.01,
                        lambda_prime: 0.0,
                        beta: 2.5,
                    },
                    n1: 123,
                },
                num_classes: c,
                opt_iterations: 77,
                final_grad_norm: 1e-9,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Roundtrip over randomized shapes, losses, step sets and clips.
            #[test]
            fn roundtrip_any_shape(
                seed in 0u64..1000,
                d0 in 1usize..9,
                d1 in 1usize..7,
                c in 2usize..5,
                s in 1usize..4,
                huber: bool,
                clip_p in 0.05f64..0.5,
            ) {
                let m = random_model(seed, d0, d1, c, s, huber, clip_p);
                let back = from_bytes(&to_bytes(&m)).unwrap();
                prop_assert_eq!(back.theta.as_slice(), m.theta.as_slice());
                prop_assert_eq!(back.config.steps, m.config.steps);
                prop_assert_eq!(back.config.loss, m.config.loss);
                prop_assert!((back.config.clip_p - m.config.clip_p).abs() < 1e-15);
                prop_assert_eq!(back.num_classes, m.num_classes);
                // Encoder weights byte-identical.
                for (l1, l2) in back.encoder.net.layers.iter().zip(&m.encoder.net.layers) {
                    prop_assert_eq!(l1.w.as_slice(), l2.w.as_slice());
                    prop_assert_eq!(&l1.b, &l2.b);
                }
            }

            /// Any truncation fails cleanly; never panics, never Ok.
            #[test]
            fn any_truncation_rejected(seed in 0u64..200, frac in 0.0f64..1.0) {
                let m = random_model(seed, 4, 3, 3, 2, false, 0.5);
                let bytes = to_bytes(&m);
                let cut = ((bytes.len() - 1) as f64 * frac) as usize;
                prop_assert!(from_bytes(&bytes[..cut]).is_err());
            }
        }
    }
}
