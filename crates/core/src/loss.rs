//! The strongly-convex per-coordinate losses of Sec. IV-C4 / Appendix F.
//!
//! GCON decomposes the training loss as
//! `L(Θ; z_i, y_i) = Σ_{j=1}^{c} ℓ(z_iᵀ θ_j ; y_ij)` (Eq. 12), where `ℓ(x; y)`
//! is a scalar convex function with bounded first/second/third derivatives.
//! The suprema `c₁ = sup|ℓ'|`, `c₂ = sup|ℓ''|`, `c₃ = sup|ℓ'''|` (Eq. 19)
//! feed directly into the Theorem 1 calibration, so each loss here carries
//! its closed-form bounds (Appendix F), and the tests verify both the
//! derivatives (finite differences) and the suprema (sampled domination).

/// Supremum bounds of the loss derivatives (Eq. 19 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossBounds {
    /// `c₁ = sup |ℓ'|`.
    pub c1: f64,
    /// `c₂ = sup |ℓ''|`.
    pub c2: f64,
    /// `c₃ = sup |ℓ'''|` (a Lipschitz constant for `ℓ''`).
    pub c3: f64,
}

/// Which convex loss to use (both appear in the paper's experiments).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossKind {
    /// MultiLabel Soft Margin (Eq. 27): per-coordinate logistic loss scaled
    /// by `1/c`.
    MultiLabelSoftMargin,
    /// Pseudo-Huber (Eq. 28) with weight `δ_l`.
    PseudoHuber {
        /// The Huber transition width `δ_l` (paper tunes in {0.1, 0.2, 0.5}).
        delta: f64,
    },
}

/// A concrete convex loss bound to a class count `c` (the `1/c` factor in
/// Eq. 27/28 depends on it).
#[derive(Clone, Copy, Debug)]
pub struct ConvexLoss {
    kind: LossKind,
    c: f64,
}

impl ConvexLoss {
    /// Creates the loss for a `c`-class problem.
    pub fn new(kind: LossKind, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "ConvexLoss: need at least 2 classes");
        if let LossKind::PseudoHuber { delta } = kind {
            assert!(delta > 0.0, "ConvexLoss: pseudo-Huber δ_l must be positive");
        }
        Self { kind, c: num_classes as f64 }
    }

    /// The loss kind.
    pub fn kind(&self) -> LossKind {
        self.kind
    }

    /// `ℓ(x; y)` for `y ∈ {0, 1}`.
    pub fn value(&self, x: f64, y: f64) -> f64 {
        match self.kind {
            LossKind::MultiLabelSoftMargin => {
                // -(1/c) [ y·log σ(x) + (1−y)·log σ(−x) ],  stable form.
                let log_sig = -softplus(-x); // log σ(x)
                let log_one_minus = -softplus(x); // log(1 − σ(x))
                -(y * log_sig + (1.0 - y) * log_one_minus) / self.c
            }
            LossKind::PseudoHuber { delta } => {
                let t = (x - y) / delta;
                delta * delta / self.c * ((1.0 + t * t).sqrt() - 1.0)
            }
        }
    }

    /// First derivative `ℓ'(x; y)` w.r.t. `x`.
    pub fn d1(&self, x: f64, y: f64) -> f64 {
        match self.kind {
            LossKind::MultiLabelSoftMargin => (sigmoid(x) - y) / self.c,
            LossKind::PseudoHuber { delta } => {
                let t = (x - y) / delta;
                (x - y) / (self.c * (1.0 + t * t).sqrt())
            }
        }
    }

    /// Second derivative `ℓ''(x; y)` w.r.t. `x` (always positive: convexity).
    pub fn d2(&self, x: f64, y: f64) -> f64 {
        match self.kind {
            LossKind::MultiLabelSoftMargin => {
                let s = sigmoid(x);
                s * (1.0 - s) / self.c
            }
            LossKind::PseudoHuber { delta } => {
                let t = (x - y) / delta;
                1.0 / (self.c * (1.0 + t * t).powf(1.5))
            }
        }
    }

    /// Third derivative `ℓ'''(x; y)` w.r.t. `x`.
    pub fn d3(&self, x: f64, y: f64) -> f64 {
        match self.kind {
            LossKind::MultiLabelSoftMargin => {
                let s = sigmoid(x);
                s * (1.0 - s) * (1.0 - 2.0 * s) / self.c
            }
            LossKind::PseudoHuber { delta } => {
                let t = (x - y) / delta;
                -3.0 * (x - y) / (self.c * delta * delta * (1.0 + t * t).powf(2.5))
            }
        }
    }

    /// The closed-form suprema of Appendix F.
    pub fn bounds(&self) -> LossBounds {
        match self.kind {
            LossKind::MultiLabelSoftMargin => LossBounds {
                c1: 1.0 / self.c,
                c2: 1.0 / (4.0 * self.c),
                c3: 1.0 / (6.0 * 3.0_f64.sqrt() * self.c),
            },
            LossKind::PseudoHuber { delta } => LossBounds {
                c1: delta / self.c,
                c2: 1.0 / self.c,
                c3: 48.0 * 5.0_f64.sqrt() / (125.0 * self.c * delta),
            },
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically stable `log(1 + e^x)`.
#[inline]
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn losses() -> Vec<ConvexLoss> {
        vec![
            ConvexLoss::new(LossKind::MultiLabelSoftMargin, 7),
            ConvexLoss::new(LossKind::PseudoHuber { delta: 0.2 }, 7),
            ConvexLoss::new(LossKind::PseudoHuber { delta: 0.5 }, 3),
        ]
    }

    fn sample_points() -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for &y in &[0.0, 1.0] {
            let mut x = -6.0;
            while x <= 6.0 {
                pts.push((x, y));
                x += 0.173;
            }
            // The pseudo-Huber extrema sit at x = y (for ℓ'') and
            // x = y ± δ/2 (for ℓ'''); include a fine grid around the target.
            let mut t = -0.5;
            while t <= 0.5 {
                pts.push((y + t, y));
                t += 0.005;
            }
        }
        pts
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-5;
        for loss in losses() {
            for &(x, y) in &sample_points() {
                let d1_fd = (loss.value(x + h, y) - loss.value(x - h, y)) / (2.0 * h);
                assert!((d1_fd - loss.d1(x, y)).abs() < 1e-7, "{:?} d1 at ({x},{y})", loss.kind());
                let d2_fd = (loss.d1(x + h, y) - loss.d1(x - h, y)) / (2.0 * h);
                assert!((d2_fd - loss.d2(x, y)).abs() < 1e-7, "{:?} d2 at ({x},{y})", loss.kind());
                let d3_fd = (loss.d2(x + h, y) - loss.d2(x - h, y)) / (2.0 * h);
                assert!((d3_fd - loss.d3(x, y)).abs() < 1e-6, "{:?} d3 at ({x},{y})", loss.kind());
            }
        }
    }

    #[test]
    fn suprema_dominate_sampled_derivatives() {
        for loss in losses() {
            let b = loss.bounds();
            for &(x, y) in &sample_points() {
                assert!(loss.d1(x, y).abs() <= b.c1 + 1e-12, "{:?} c1", loss.kind());
                assert!(loss.d2(x, y).abs() <= b.c2 + 1e-12, "{:?} c2", loss.kind());
                assert!(loss.d3(x, y).abs() <= b.c3 + 1e-12, "{:?} c3", loss.kind());
            }
        }
    }

    #[test]
    fn suprema_are_tight() {
        // The sampled maxima should come within 5% of the closed forms
        // (they are attained in the sampled range).
        for loss in losses() {
            let b = loss.bounds();
            let pts = sample_points();
            let max_d2 = pts.iter().map(|&(x, y)| loss.d2(x, y).abs()).fold(0.0_f64, f64::max);
            let max_d3 = pts.iter().map(|&(x, y)| loss.d3(x, y).abs()).fold(0.0_f64, f64::max);
            assert!(max_d2 > 0.95 * b.c2, "{:?}: max d2 {max_d2} vs c2 {}", loss.kind(), b.c2);
            assert!(max_d3 > 0.90 * b.c3, "{:?}: max d3 {max_d3} vs c3 {}", loss.kind(), b.c3);
        }
    }

    #[test]
    fn convexity_positive_second_derivative() {
        for loss in losses() {
            for &(x, y) in &sample_points() {
                assert!(loss.d2(x, y) > 0.0, "{:?} at ({x},{y})", loss.kind());
            }
        }
    }

    #[test]
    fn msm_loss_values_sane() {
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 2);
        // Confident correct prediction → small loss.
        assert!(loss.value(8.0, 1.0) < 0.001);
        assert!(loss.value(-8.0, 0.0) < 0.001);
        // Confident wrong prediction → large loss.
        assert!(loss.value(-8.0, 1.0) > 3.0);
        // At x=0 the loss is log(2)/c regardless of y.
        assert!((loss.value(0.0, 1.0) - 2.0_f64.ln() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn pseudo_huber_is_zero_at_target() {
        let loss = ConvexLoss::new(LossKind::PseudoHuber { delta: 0.3 }, 4);
        assert_eq!(loss.value(1.0, 1.0), 0.0);
        assert_eq!(loss.d1(1.0, 1.0), 0.0);
        assert!(loss.value(2.0, 1.0) > 0.0);
    }

    #[test]
    fn msm_numerically_stable_at_extremes() {
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        for &x in &[-500.0, 500.0] {
            for &y in &[0.0, 1.0] {
                assert!(loss.value(x, y).is_finite());
                assert!(loss.d1(x, y).is_finite());
            }
        }
    }
}
