//! Closed-form sensitivity bounds of Lemma 2 — the paper's central technical
//! result: the sensitivity of the aggregate features under edge-level
//! neighboring graphs is `O(m)` (in fact bounded by `2(1−α)/α` for all `m`),
//! not the naive `O(k^{m−1})`.

use crate::propagation::PropagationStep;

/// `Ψ(Z_m) = 2(1−α)/α · [1 − (1−α)^m]` (Eq. 25); `m = ∞` gives `2(1−α)/α`,
/// `m = 0` gives 0 (no edge information is used).
pub fn psi_zm(alpha: f64, step: PropagationStep) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "psi_zm: α must lie in (0, 1]");
    let base = 2.0 * (1.0 - alpha) / alpha;
    match step {
        PropagationStep::Finite(m) => base * (1.0 - (1.0 - alpha).powi(m as i32)),
        PropagationStep::Infinite => base,
    }
}

/// `Ψ(Z) = (1/s) Σ_i Ψ(Z_{m_i})` (Eq. 26) for the concatenated features of
/// Eq. (11).
pub fn psi_z(alpha: f64, steps: &[PropagationStep]) -> f64 {
    assert!(!steps.is_empty(), "psi_z: need at least one step");
    steps.iter().map(|&m| psi_zm(alpha, m)).sum::<f64>() / steps.len() as f64
}

/// **Extension (paper's Lemma 1 remark):** sensitivity under the off-diagonal
/// clip `p ≤ 1/2` of Lemma 1.
///
/// The paper proves Lemma 2 for the unclipped normalization (`p = 1/2`).
/// Re-running its proof with a general clip tightens both factors of
/// Eq. (34): the column-sum bound of `R′_∞` becomes `max((k+1)p, 1)`
/// (Lemma 1 bullet 3) and the changed-row mass `‖a₁ᵀZ‖₂` is bounded by
/// `2·min(1/(k+1), p) ≤ 2p` per endpoint, so each endpoint contributes at
/// most `(k+1)p · 2/(k+1) = 2p` — i.e. the closed form scales by `2p`
/// relative to `p = 1/2`:
///
/// ```text
/// Ψ_p(Z_m) = 2p · Ψ(Z_m) / (2 · 1/2) = 2p · Ψ(Z_m)   …with Ψ from Eq. (25)
/// ```
///
/// At `p = 1/2` this reduces to Lemma 2 exactly. The empirical test below
/// (and the property suite) check the clipped bound against measured ψ over
/// random edge removals. This knob is *experimental*: `GconConfig` keeps the
/// paper's `p = 1/2` default.
pub fn psi_zm_clipped(alpha: f64, step: PropagationStep, p: f64) -> f64 {
    assert!(p > 0.0 && p <= 0.5, "psi_zm_clipped: clip p must lie in (0, 0.5]");
    2.0 * p * psi_zm(alpha, step)
}

/// Clipped analogue of [`psi_z`]: `Ψ_p(Z) = (1/s) Σ_i Ψ_p(Z_{m_i})`
/// (Eq. 26 with the clipped per-step bound). At `p = 1/2` this equals
/// [`psi_z`] exactly.
pub fn psi_z_clipped(alpha: f64, steps: &[PropagationStep], p: f64) -> f64 {
    assert!(!steps.is_empty(), "psi_z_clipped: need at least one step");
    steps.iter().map(|&m| psi_zm_clipped(alpha, m, p)).sum::<f64>() / steps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation::{concat_features, propagate};
    use gcon_graph::generators::{self, SbmConfig};
    use gcon_graph::normalize::row_stochastic_default;
    use gcon_linalg::reduce::psi_row_distance;
    use gcon_linalg::Mat;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn psi_closed_forms() {
        // m = 0 → 0; m = ∞ → 2(1-α)/α; monotone in m.
        assert_eq!(psi_zm(0.5, PropagationStep::Finite(0)), 0.0);
        assert!((psi_zm(0.5, PropagationStep::Infinite) - 2.0).abs() < 1e-12);
        let mut prev = 0.0;
        for m in 0..30 {
            let v = psi_zm(0.3, PropagationStep::Finite(m));
            assert!(v >= prev);
            prev = v;
        }
        assert!(prev <= psi_zm(0.3, PropagationStep::Infinite) + 1e-12);
    }

    #[test]
    fn psi_decreases_with_alpha() {
        // Lemma 2 discussion: larger restart probability → lower sensitivity.
        let mut prev = f64::INFINITY;
        for &a in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            let v = psi_zm(a, PropagationStep::Finite(5));
            assert!(v < prev, "α={a}: {v} not < {prev}");
            prev = v;
        }
        assert_eq!(psi_zm(1.0, PropagationStep::Infinite), 0.0);
    }

    #[test]
    fn psi_z_averages() {
        let steps = [PropagationStep::Finite(0), PropagationStep::Infinite];
        let expect = (0.0 + 2.0 * (1.0 - 0.4) / 0.4) / 2.0;
        assert!((psi_z(0.4, &steps) - expect).abs() < 1e-12);
    }

    /// The empirical ψ(Z) over random single-edge removals never exceeds the
    /// closed-form Ψ(Z_m) — the statement of Lemma 2 verified end to end on
    /// real propagation output.
    #[test]
    fn lemma2_empirical_bound_holds() {
        let mut rng = StdRng::seed_from_u64(77);
        let cfg = SbmConfig {
            n: 120,
            num_edges: 420,
            num_classes: 3,
            homophily: 0.7,
            degree_exponent: 2.2,
        };
        let (g, _) = generators::sbm_homophily(&cfg, &mut rng);
        let mut x = Mat::uniform(120, 6, 1.0, &mut rng);
        x.normalize_rows_l2();
        let edges = g.edges();
        for &alpha in &[0.2, 0.5, 0.8] {
            for step in [
                PropagationStep::Finite(1),
                PropagationStep::Finite(3),
                PropagationStep::Finite(8),
                PropagationStep::Infinite,
            ] {
                let a = row_stochastic_default(&g);
                let z = propagate(&a, &x, alpha, step);
                let bound = psi_zm(alpha, step);
                for _ in 0..5 {
                    let &(u, v) = &edges[rng.gen_range(0..edges.len())];
                    let gp = g.with_edge_removed(u, v);
                    let ap = row_stochastic_default(&gp);
                    let zp = propagate(&ap, &x, alpha, step);
                    let psi = psi_row_distance(&z, &zp);
                    assert!(
                        psi <= bound + 1e-8,
                        "α={alpha} m={step}: empirical ψ {psi} > bound {bound}"
                    );
                }
            }
        }
    }

    /// Same check for the concatenated multi-scale features (Eq. 26).
    #[test]
    fn lemma2_concat_bound_holds() {
        let mut rng = StdRng::seed_from_u64(78);
        let g = generators::erdos_renyi_gnm(80, 240, &mut rng);
        let mut x = Mat::uniform(80, 5, 1.0, &mut rng);
        x.normalize_rows_l2();
        let steps =
            [PropagationStep::Finite(1), PropagationStep::Finite(4), PropagationStep::Infinite];
        let alpha = 0.3;
        let a = row_stochastic_default(&g);
        let z = concat_features(&a, &x, alpha, &steps);
        let bound = psi_z(alpha, &steps);
        let edges = g.edges();
        for _ in 0..8 {
            let &(u, v) = &edges[rng.gen_range(0..edges.len())];
            let gp = g.with_edge_removed(u, v);
            let ap = row_stochastic_default(&gp);
            let zp = concat_features(&ap, &x, alpha, &steps);
            let psi = psi_row_distance(&z, &zp);
            assert!(psi <= bound + 1e-8, "empirical ψ {psi} > bound {bound}");
        }
    }

    /// The clipped-normalization extension: Ψ_p dominates the measured ψ
    /// when propagation runs on the Lemma-1-clipped Ã, and reduces to
    /// Lemma 2 at p = 1/2.
    #[test]
    fn clipped_sensitivity_bound_holds_empirically() {
        use gcon_graph::normalize::row_stochastic;
        let mut rng = StdRng::seed_from_u64(79);
        let g = generators::erdos_renyi_gnm(100, 300, &mut rng);
        let mut x = Mat::uniform(100, 5, 1.0, &mut rng);
        x.normalize_rows_l2();
        let edges = g.edges();
        assert!(
            (psi_zm_clipped(0.3, PropagationStep::Finite(4), 0.5)
                - psi_zm(0.3, PropagationStep::Finite(4)))
            .abs()
                < 1e-12
        );
        for &p in &[0.1, 0.25, 0.5] {
            for &alpha in &[0.3, 0.6] {
                let step = PropagationStep::Finite(4);
                let a = row_stochastic(&g, p);
                let z = propagate(&a, &x, alpha, step);
                let bound = psi_zm_clipped(alpha, step, p);
                for _ in 0..4 {
                    let (u, v) = edges[rng.gen_range(0..edges.len())];
                    let gp = g.with_edge_removed(u, v);
                    let zp = propagate(&row_stochastic(&gp, p), &x, alpha, step);
                    let psi = psi_row_distance(&z, &zp);
                    assert!(
                        psi <= bound + 1e-8,
                        "p={p} α={alpha}: measured ψ {psi} > clipped bound {bound}"
                    );
                }
            }
        }
    }

    /// The bound should not be vacuous: on a star graph with the removed
    /// edge at the hub, the empirical ψ gets within an order of magnitude of
    /// the closed form for 1 step.
    #[test]
    fn lemma2_bound_is_not_absurdly_loose() {
        let g = generators::star(10);
        let mut x = Mat::from_fn(10, 2, |i, j| if (i + j) % 2 == 0 { 1.0 } else { -1.0 });
        x.normalize_rows_l2();
        let alpha = 0.2;
        let step = PropagationStep::Finite(1);
        let a = row_stochastic_default(&g);
        let z = propagate(&a, &x, alpha, step);
        let gp = g.with_edge_removed(0, 1);
        let zp = propagate(&row_stochastic_default(&gp), &x, alpha, step);
        let psi = psi_row_distance(&z, &zp);
        let bound = psi_zm(alpha, step);
        assert!(psi > bound / 20.0, "ψ {psi} suspiciously far below bound {bound}");
    }
}
