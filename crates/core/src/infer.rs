//! Algorithm 4: inference with a trained GCON model.
//!
//! Two modes (Sec. IV-C6):
//!
//! - **Private inference** (Eq. 16): the querying node knows its own edges,
//!   so a *single* hop of aggregation `R̂ = (1−α_I)Ã + α_I·I` is allowed —
//!   it uses only edges incident to each query node and reveals nothing about
//!   non-neighboring edges. This is the standard evaluation setup (scenario
//!   (i)) used in Figure 1 and Figure 2.
//! - **Public inference**: when the test graph is public (Figure 3, following
//!   the decoupled-GNN evaluation of \[46\]–\[48\]), the full training-time
//!   propagation `Z` is computed and multiplied by `Θ_priv`.
//!
//! # Structure: propagate, then head
//!
//! Both modes factor into the same two stages, exposed separately so serving
//! layers (`gcon-serve`) can run them at different times:
//!
//! 1. **Feature stage** — [`public_features`] / [`private_features`]: encode
//!    and row-normalize the raw features, aggregate them over the graph
//!    (full multi-scale propagation or the one-hop `R̂`), and apply the
//!    `1/s` concatenation scaling. This is the expensive, whole-graph part;
//!    its output depends only on `(model, graph, features)` and can be
//!    precomputed and reused across queries.
//! 2. **Head stage** — [`head_logits`]: multiply (rows of) the propagated
//!    feature matrix by the released parameters `Θ_priv`. This is the cheap,
//!    per-query part.
//!
//! [`private_logits`] and [`public_logits`] are thin compositions of the two
//! stages; `gcon-serve::ServingModel` runs stage 1 once at build time and
//! answers queries with stage 2 only. Because every dense kernel in
//! `gcon-linalg` computes each output row independently of the surrounding
//! row partition (see the determinism notes in its crate docs), the serving
//! path is **bitwise identical** to calling the entry points here.

use crate::model::TrainedGcon;
use crate::propagation::{concat_features_with_solver, PropagationStep};
use gcon_graph::normalize::row_stochastic;
use gcon_graph::Graph;
use gcon_linalg::{ops, reduce, Mat};

/// Encodes and row-normalizes raw features with the model's public encoder.
fn encode_normalized(model: &TrainedGcon, features: &Mat) -> Mat {
    let mut x = model.encoder.encode(features);
    x.normalize_rows_l2();
    x
}

/// Feature stage of private inference (Eq. 16): the one-hop aggregate
/// `(1/s)(R̂_{m₁}X̄ ⊕ … ⊕ R̂_{m_s}X̄)` with `R̂ = (1−α_I)Ã + α_I·I`
/// (`R̂ = I` for `mᵢ = 0`), where `X̄` is the encoded, row-normalized
/// feature matrix.
///
/// Row `i` of the result depends only on `X̄` rows adjacent to node `i` (and
/// `X̄ᵢ` itself), which is what makes this stage admissible under edge DP.
/// [`private_logits`] is this followed by [`head_logits`].
pub fn private_features(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Mat {
    let x = encode_normalized(model, features);
    let a_tilde = row_stochastic(graph, model.config.clip_p);
    let alpha_i = model.config.alpha_inference;
    let steps = &model.config.steps;
    let (n, d) = x.shape();
    let mut z = Mat::zeros(n, steps.len() * d);
    // One-hop aggregate, computed at most once and written straight into
    // every m_i > 0 column block of the concatenation.
    let mut one_hop: Option<Mat> = None;
    for (i, &step) in steps.iter().enumerate() {
        let part = match step {
            PropagationStep::Finite(0) => &x,
            _ => &*one_hop.get_or_insert_with(|| {
                let mut h = a_tilde.spmm(&x);
                h.map_inplace(|v| v * (1.0 - alpha_i));
                ops::add_scaled_assign(&mut h, alpha_i, &x);
                h
            }),
        };
        z.copy_into_columns(i * d, part);
    }
    let inv_s = 1.0 / steps.len() as f64;
    z.map_inplace(|v| v * inv_s);
    z
}

/// Feature stage of public inference: the full training-time propagation
/// `Z = (1/s)(Z_{m₁} ⊕ … ⊕ Z_{m_s})` of the encoded, row-normalized
/// features (no DP constraint on the test graph's edges).
///
/// This is the whole-graph computation a serving layer precomputes once;
/// [`public_logits`] is this followed by [`head_logits`].
pub fn public_features(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Mat {
    let x = encode_normalized(model, features);
    let a_tilde = row_stochastic(graph, model.config.clip_p);
    concat_features_with_solver(
        &a_tilde,
        &x,
        model.config.alpha,
        &model.config.steps,
        model.config.ppr_solver,
    )
}

/// Head stage shared by both inference modes: `Ŷ = Z·Θ_priv` for a (full or
/// gathered) propagated feature matrix `z`.
///
/// Each output row is computed independently of every other row, so calling
/// this on a row subset of `Z` yields bitwise the same logits those rows get
/// in the full product — the property `gcon-serve` relies on.
pub fn head_logits(model: &TrainedGcon, z: &Mat) -> Mat {
    ops::matmul(z, &model.theta)
}

/// Private inference (Eq. 16): one-hop aggregation only.
///
/// Returns the logit matrix `Ŷ = (R̂_{m₁}X̄ ⊕ … ⊕ R̂_{m_s}X̄)Θ_priv`
/// (scaled by `1/s` to match the training-time feature scale; a uniform
/// positive scaling does not change the argmax). Composition of
/// [`private_features`] and [`head_logits`].
///
/// ```
/// use gcon_core::infer::{private_logits, private_predict};
/// # use gcon_core::train::train_gcon;
/// # use gcon_core::{GconConfig, PropagationStep};
/// # use gcon_graph::generators::{sbm_homophily, SbmConfig};
/// # use gcon_linalg::Mat;
/// # use rand::{rngs::StdRng, SeedableRng};
/// # let mut rng = StdRng::seed_from_u64(7);
/// # let cfg = SbmConfig { n: 30, num_edges: 90, num_classes: 2, homophily: 0.8,
/// #                       degree_exponent: 2.5 };
/// # let (graph, labels) = sbm_homophily(&cfg, &mut rng);
/// # let features = Mat::from_fn(30, 6, |i, j| if j % 2 == labels[i] { 1.0 } else { 0.0 });
/// # let train_idx: Vec<usize> = (0..30).collect();
/// # let mut config = GconConfig::default();
/// # config.encoder.epochs = 5;
/// # config.encoder.hidden = 8;
/// # config.encoder.d1 = 4;
/// # config.optimizer.max_iters = 30;
/// let model = train_gcon(&config, &graph, &features, &labels, &train_idx, 2, 4.0, 1e-3, &mut rng);
/// // One row of logits per node, one column per class.
/// let logits = private_logits(&model, &graph, &features);
/// assert_eq!(logits.shape(), (graph.num_nodes(), model.num_classes));
/// // `private_predict` is the row-wise argmax of exactly these logits.
/// assert_eq!(private_predict(&model, &graph, &features).len(), graph.num_nodes());
/// ```
pub fn private_logits(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Mat {
    head_logits(model, &private_features(model, graph, features))
}

/// Private inference returning hard class predictions (row-wise argmax of
/// [`private_logits`]).
///
/// ```
/// # use gcon_core::infer::private_predict;
/// # use gcon_core::train::train_gcon;
/// # use gcon_core::GconConfig;
/// # use gcon_graph::generators::{sbm_homophily, SbmConfig};
/// # use gcon_linalg::Mat;
/// # use rand::{rngs::StdRng, SeedableRng};
/// # let mut rng = StdRng::seed_from_u64(8);
/// # let cfg = SbmConfig { n: 30, num_edges: 90, num_classes: 2, homophily: 0.8,
/// #                       degree_exponent: 2.5 };
/// # let (graph, labels) = sbm_homophily(&cfg, &mut rng);
/// # let features = Mat::from_fn(30, 6, |i, j| if j % 2 == labels[i] { 1.0 } else { 0.0 });
/// # let train_idx: Vec<usize> = (0..30).collect();
/// # let mut config = GconConfig::default();
/// # config.encoder.epochs = 5;
/// # config.encoder.hidden = 8;
/// # config.encoder.d1 = 4;
/// # config.optimizer.max_iters = 30;
/// let model = train_gcon(&config, &graph, &features, &labels, &train_idx, 2, 4.0, 1e-3, &mut rng);
/// let pred = private_predict(&model, &graph, &features);
/// assert!(pred.iter().all(|&c| c < model.num_classes));
/// ```
pub fn private_predict(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Vec<usize> {
    reduce::row_argmax(&private_logits(model, graph, features))
}

/// Public inference: full training-time propagation (no DP constraint on the
/// test graph's edges). Composition of [`public_features`] and
/// [`head_logits`].
///
/// ```
/// use gcon_core::infer::{public_features, public_logits, head_logits};
/// # use gcon_core::train::train_gcon;
/// # use gcon_core::GconConfig;
/// # use gcon_graph::generators::{sbm_homophily, SbmConfig};
/// # use gcon_linalg::Mat;
/// # use rand::{rngs::StdRng, SeedableRng};
/// # let mut rng = StdRng::seed_from_u64(9);
/// # let cfg = SbmConfig { n: 30, num_edges: 90, num_classes: 2, homophily: 0.8,
/// #                       degree_exponent: 2.5 };
/// # let (graph, labels) = sbm_homophily(&cfg, &mut rng);
/// # let features = Mat::from_fn(30, 6, |i, j| if j % 2 == labels[i] { 1.0 } else { 0.0 });
/// # let train_idx: Vec<usize> = (0..30).collect();
/// # let mut config = GconConfig::default();
/// # config.encoder.epochs = 5;
/// # config.encoder.hidden = 8;
/// # config.encoder.d1 = 4;
/// # config.optimizer.max_iters = 30;
/// let model = train_gcon(&config, &graph, &features, &labels, &train_idx, 2, 4.0, 1e-3, &mut rng);
/// // The entry point is exactly feature stage + head stage: a serving layer
/// // may precompute the feature stage and replay the head per query.
/// let z = public_features(&model, &graph, &features);
/// let logits = public_logits(&model, &graph, &features);
/// assert_eq!(head_logits(&model, &z), logits);
/// ```
pub fn public_logits(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Mat {
    head_logits(model, &public_features(model, graph, features))
}

/// Public inference returning hard class predictions (row-wise argmax of
/// [`public_logits`]).
///
/// ```
/// # use gcon_core::infer::public_predict;
/// # use gcon_core::train::train_gcon;
/// # use gcon_core::GconConfig;
/// # use gcon_graph::generators::{sbm_homophily, SbmConfig};
/// # use gcon_linalg::Mat;
/// # use rand::{rngs::StdRng, SeedableRng};
/// # let mut rng = StdRng::seed_from_u64(10);
/// # let cfg = SbmConfig { n: 30, num_edges: 90, num_classes: 2, homophily: 0.8,
/// #                       degree_exponent: 2.5 };
/// # let (graph, labels) = sbm_homophily(&cfg, &mut rng);
/// # let features = Mat::from_fn(30, 6, |i, j| if j % 2 == labels[i] { 1.0 } else { 0.0 });
/// # let train_idx: Vec<usize> = (0..30).collect();
/// # let mut config = GconConfig::default();
/// # config.encoder.epochs = 5;
/// # config.encoder.hidden = 8;
/// # config.encoder.d1 = 4;
/// # config.optimizer.max_iters = 30;
/// let model = train_gcon(&config, &graph, &features, &labels, &train_idx, 2, 4.0, 1e-3, &mut rng);
/// let pred = public_predict(&model, &graph, &features);
/// assert_eq!(pred.len(), graph.num_nodes());
/// ```
pub fn public_predict(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Vec<usize> {
    reduce::row_argmax(&public_logits(model, graph, features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GconConfig;
    use crate::train::train_gcon;
    use gcon_graph::generators::{sbm_homophily, SbmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_setup(seed: u64) -> (Graph, Mat, Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SbmConfig {
            n: 90,
            num_edges: 270,
            num_classes: 3,
            homophily: 0.85,
            degree_exponent: 2.5,
        };
        let (g, labels) = sbm_homophily(&cfg, &mut rng);
        // Informative features: class-indexed bumps + noise.
        let x = Mat::from_fn(90, 12, |i, j| {
            let hit = j % 3 == labels[i];
            (if hit { 1.5 } else { 0.0 }) + 0.4 * (((i * 13 + j * 7) % 17) as f64 / 17.0 - 0.5)
        });
        let train_idx: Vec<usize> = (0..90).step_by(3).collect();
        (g, x, labels, train_idx)
    }

    fn quick_config() -> GconConfig {
        GconConfig {
            encoder: crate::encoder::EncoderConfig {
                hidden: 16,
                d1: 8,
                epochs: 80,
                lr: 0.02,
                weight_decay: 1e-5,
            },
            steps: vec![PropagationStep::Finite(2)],
            optimizer: crate::model::OptimizerConfig { lr: 0.05, max_iters: 800, grad_tol: 1e-7 },
            ..Default::default()
        }
    }

    #[test]
    fn private_and_public_inference_shapes() {
        let (g, x, labels, train_idx) = toy_setup(91);
        let mut rng = StdRng::seed_from_u64(92);
        let model =
            train_gcon(&quick_config(), &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let lp = private_logits(&model, &g, &x);
        let lq = public_logits(&model, &g, &x);
        assert_eq!(lp.shape(), (90, 3));
        assert_eq!(lq.shape(), (90, 3));
        assert!(lp.is_finite() && lq.is_finite());
    }

    /// The entry points must be exactly feature stage ∘ head stage — the
    /// decomposition `gcon-serve` consumes.
    #[test]
    fn logits_equal_feature_stage_then_head_stage() {
        let (g, x, labels, train_idx) = toy_setup(103);
        let mut rng = StdRng::seed_from_u64(104);
        let mut cfg = quick_config();
        cfg.steps = vec![PropagationStep::Finite(0), PropagationStep::Finite(2)];
        let model = train_gcon(&cfg, &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let z_pub = public_features(&model, &g, &x);
        let z_priv = private_features(&model, &g, &x);
        assert_eq!(z_pub.shape(), (90, 2 * 8));
        assert_eq!(
            head_logits(&model, &z_pub).as_slice(),
            public_logits(&model, &g, &x).as_slice()
        );
        assert_eq!(
            head_logits(&model, &z_priv).as_slice(),
            private_logits(&model, &g, &x).as_slice()
        );
    }

    #[test]
    fn trained_model_beats_majority_class_at_generous_budget() {
        let (g, x, labels, train_idx) = toy_setup(93);
        let mut rng = StdRng::seed_from_u64(94);
        let model =
            train_gcon(&quick_config(), &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let pred = private_predict(&model, &g, &x);
        let acc = pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 90.0;
        assert!(acc > 0.5, "private accuracy {acc} not above majority floor ≈0.33");
    }

    #[test]
    fn private_inference_ignores_far_edges() {
        // Removing an edge NOT incident to a node must not change that
        // node's private prediction beyond the training-side effect — here we
        // only exercise the inference side by reusing the same trained model.
        let (g, x, labels, train_idx) = toy_setup(95);
        let mut rng = StdRng::seed_from_u64(96);
        let model =
            train_gcon(&quick_config(), &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let edges = g.edges();
        let (u, v) = edges[0];
        let gp = g.with_edge_removed(u, v);
        let before = private_logits(&model, &g, &x);
        let after = private_logits(&model, &gp, &x);
        for i in 0..90 {
            let i_u32 = i as u32;
            if i_u32 == u || i_u32 == v {
                continue; // endpoints may change
            }
            for j in 0..3 {
                assert!(
                    (before.get(i, j) - after.get(i, j)).abs() < 1e-12,
                    "node {i} affected by non-incident edge removal"
                );
            }
        }
    }

    #[test]
    fn alpha_inference_one_ignores_all_edges() {
        // At α_I = 1, Eq. 16's R̂ = I: private inference must equal the
        // graph-free path, so logits are identical on any two graphs.
        let (g, x, labels, train_idx) = toy_setup(97);
        let mut cfg = quick_config();
        cfg.alpha_inference = 1.0;
        let mut rng = StdRng::seed_from_u64(98);
        let model = train_gcon(&cfg, &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let on_g = private_logits(&model, &g, &x);
        let empty = Graph::empty(90);
        let on_empty = private_logits(&model, &empty, &x);
        for (a, b) in on_g.as_slice().iter().zip(on_empty.as_slice()) {
            assert!((a - b).abs() < 1e-12, "α_I = 1 still reads edges");
        }
    }

    #[test]
    fn clipped_model_inference_uses_clipped_normalization() {
        // A model trained at clip p < 1/2 must aggregate with the same
        // clipped Ã at inference: verify against a manual Eq. 16 replay.
        let (g, x, labels, train_idx) = toy_setup(99);
        let mut cfg = quick_config();
        cfg.clip_p = 0.2;
        let mut rng = StdRng::seed_from_u64(100);
        let model = train_gcon(&cfg, &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let got = private_logits(&model, &g, &x);

        // Manual replay of Eq. 16 with the clipped normalization.
        let xin = {
            let mut e = model.encoder.encode(&x);
            e.normalize_rows_l2();
            e
        };
        let a = row_stochastic(&g, 0.2);
        let alpha_i = model.config.alpha_inference;
        let mut h = a.spmm(&xin);
        h.map_inplace(|v| v * (1.0 - alpha_i));
        ops::add_scaled_assign(&mut h, alpha_i, &xin);
        let want = ops::matmul(&h, &model.theta);
        for (a_, b_) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a_ - b_).abs() < 1e-10, "clipped inference mismatch");
        }
    }

    #[test]
    fn step_zero_inference_is_graph_free() {
        // steps = [0] means R̂ = I regardless of α_I (Eq. 16 first branch).
        let (g, x, labels, train_idx) = toy_setup(101);
        let mut cfg = quick_config();
        cfg.steps = vec![PropagationStep::Finite(0)];
        let mut rng = StdRng::seed_from_u64(102);
        let model = train_gcon(&cfg, &g, &x, &labels, &train_idx, 3, 1.0, 1e-3, &mut rng);
        // Ψ(Z) = 0 at m = 0: the report must mark the run noise-free.
        assert!(model.report.params.is_noise_free());
        let on_g = private_logits(&model, &g, &x);
        let on_empty = private_logits(&model, &Graph::empty(90), &x);
        assert_eq!(on_g.as_slice(), on_empty.as_slice());
    }
}
