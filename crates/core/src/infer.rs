//! Algorithm 4: inference with a trained GCON model.
//!
//! Two modes (Sec. IV-C6):
//!
//! - **Private inference** (Eq. 16): the querying node knows its own edges,
//!   so a *single* hop of aggregation `R̂ = (1−α_I)Ã + α_I·I` is allowed —
//!   it uses only edges incident to each query node and reveals nothing about
//!   non-neighboring edges. This is the standard evaluation setup (scenario
//!   (i)) used in Figure 1 and Figure 2.
//! - **Public inference**: when the test graph is public (Figure 3, following
//!   the decoupled-GNN evaluation of \[46\]–\[48\]), the full training-time
//!   propagation `Z` is computed and multiplied by `Θ_priv`.

use crate::model::TrainedGcon;
use crate::propagation::{concat_features_with_solver, PropagationStep};
use gcon_graph::normalize::row_stochastic;
use gcon_graph::Graph;
use gcon_linalg::{ops, reduce, Mat};

/// Encodes and row-normalizes raw features with the model's public encoder.
fn encode_normalized(model: &TrainedGcon, features: &Mat) -> Mat {
    let mut x = model.encoder.encode(features);
    x.normalize_rows_l2();
    x
}

/// Private inference (Eq. 16): one-hop aggregation only.
///
/// Returns the logit matrix `Ŷ = (R̂_{m₁}X̄ ⊕ … ⊕ R̂_{m_s}X̄)Θ_priv`
/// (scaled by `1/s` to match the training-time feature scale; a uniform
/// positive scaling does not change the argmax).
pub fn private_logits(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Mat {
    let x = encode_normalized(model, features);
    let a_tilde = row_stochastic(graph, model.config.clip_p);
    let alpha_i = model.config.alpha_inference;
    let steps = &model.config.steps;
    let (n, d) = x.shape();
    let mut z = Mat::zeros(n, steps.len() * d);
    // One-hop aggregate, computed at most once and written straight into
    // every m_i > 0 column block of the concatenation.
    let mut one_hop: Option<Mat> = None;
    for (i, &step) in steps.iter().enumerate() {
        let part = match step {
            PropagationStep::Finite(0) => &x,
            _ => &*one_hop.get_or_insert_with(|| {
                let mut h = a_tilde.spmm(&x);
                h.map_inplace(|v| v * (1.0 - alpha_i));
                ops::add_scaled_assign(&mut h, alpha_i, &x);
                h
            }),
        };
        z.copy_into_columns(i * d, part);
    }
    let inv_s = 1.0 / steps.len() as f64;
    z.map_inplace(|v| v * inv_s);
    ops::matmul(&z, &model.theta)
}

/// Private inference returning hard class predictions.
pub fn private_predict(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Vec<usize> {
    reduce::row_argmax(&private_logits(model, graph, features))
}

/// Public inference: full training-time propagation (no DP constraint on the
/// test graph's edges).
pub fn public_logits(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Mat {
    let x = encode_normalized(model, features);
    let a_tilde = row_stochastic(graph, model.config.clip_p);
    let z = concat_features_with_solver(
        &a_tilde,
        &x,
        model.config.alpha,
        &model.config.steps,
        model.config.ppr_solver,
    );
    ops::matmul(&z, &model.theta)
}

/// Public inference returning hard class predictions.
pub fn public_predict(model: &TrainedGcon, graph: &Graph, features: &Mat) -> Vec<usize> {
    reduce::row_argmax(&public_logits(model, graph, features))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GconConfig;
    use crate::train::train_gcon;
    use gcon_graph::generators::{sbm_homophily, SbmConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_setup(seed: u64) -> (Graph, Mat, Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SbmConfig {
            n: 90,
            num_edges: 270,
            num_classes: 3,
            homophily: 0.85,
            degree_exponent: 2.5,
        };
        let (g, labels) = sbm_homophily(&cfg, &mut rng);
        // Informative features: class-indexed bumps + noise.
        let x = Mat::from_fn(90, 12, |i, j| {
            let hit = j % 3 == labels[i];
            (if hit { 1.5 } else { 0.0 }) + 0.4 * (((i * 13 + j * 7) % 17) as f64 / 17.0 - 0.5)
        });
        let train_idx: Vec<usize> = (0..90).step_by(3).collect();
        (g, x, labels, train_idx)
    }

    fn quick_config() -> GconConfig {
        GconConfig {
            encoder: crate::encoder::EncoderConfig {
                hidden: 16,
                d1: 8,
                epochs: 80,
                lr: 0.02,
                weight_decay: 1e-5,
            },
            steps: vec![PropagationStep::Finite(2)],
            optimizer: crate::model::OptimizerConfig { lr: 0.05, max_iters: 800, grad_tol: 1e-7 },
            ..Default::default()
        }
    }

    #[test]
    fn private_and_public_inference_shapes() {
        let (g, x, labels, train_idx) = toy_setup(91);
        let mut rng = StdRng::seed_from_u64(92);
        let model =
            train_gcon(&quick_config(), &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let lp = private_logits(&model, &g, &x);
        let lq = public_logits(&model, &g, &x);
        assert_eq!(lp.shape(), (90, 3));
        assert_eq!(lq.shape(), (90, 3));
        assert!(lp.is_finite() && lq.is_finite());
    }

    #[test]
    fn trained_model_beats_majority_class_at_generous_budget() {
        let (g, x, labels, train_idx) = toy_setup(93);
        let mut rng = StdRng::seed_from_u64(94);
        let model =
            train_gcon(&quick_config(), &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let pred = private_predict(&model, &g, &x);
        let acc = pred.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / 90.0;
        assert!(acc > 0.5, "private accuracy {acc} not above majority floor ≈0.33");
    }

    #[test]
    fn private_inference_ignores_far_edges() {
        // Removing an edge NOT incident to a node must not change that
        // node's private prediction beyond the training-side effect — here we
        // only exercise the inference side by reusing the same trained model.
        let (g, x, labels, train_idx) = toy_setup(95);
        let mut rng = StdRng::seed_from_u64(96);
        let model =
            train_gcon(&quick_config(), &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let edges = g.edges();
        let (u, v) = edges[0];
        let gp = g.with_edge_removed(u, v);
        let before = private_logits(&model, &g, &x);
        let after = private_logits(&model, &gp, &x);
        for i in 0..90 {
            let i_u32 = i as u32;
            if i_u32 == u || i_u32 == v {
                continue; // endpoints may change
            }
            for j in 0..3 {
                assert!(
                    (before.get(i, j) - after.get(i, j)).abs() < 1e-12,
                    "node {i} affected by non-incident edge removal"
                );
            }
        }
    }

    #[test]
    fn alpha_inference_one_ignores_all_edges() {
        // At α_I = 1, Eq. 16's R̂ = I: private inference must equal the
        // graph-free path, so logits are identical on any two graphs.
        let (g, x, labels, train_idx) = toy_setup(97);
        let mut cfg = quick_config();
        cfg.alpha_inference = 1.0;
        let mut rng = StdRng::seed_from_u64(98);
        let model = train_gcon(&cfg, &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let on_g = private_logits(&model, &g, &x);
        let empty = Graph::empty(90);
        let on_empty = private_logits(&model, &empty, &x);
        for (a, b) in on_g.as_slice().iter().zip(on_empty.as_slice()) {
            assert!((a - b).abs() < 1e-12, "α_I = 1 still reads edges");
        }
    }

    #[test]
    fn clipped_model_inference_uses_clipped_normalization() {
        // A model trained at clip p < 1/2 must aggregate with the same
        // clipped Ã at inference: verify against a manual Eq. 16 replay.
        let (g, x, labels, train_idx) = toy_setup(99);
        let mut cfg = quick_config();
        cfg.clip_p = 0.2;
        let mut rng = StdRng::seed_from_u64(100);
        let model = train_gcon(&cfg, &g, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        let got = private_logits(&model, &g, &x);

        // Manual replay of Eq. 16 with the clipped normalization.
        let xin = {
            let mut e = model.encoder.encode(&x);
            e.normalize_rows_l2();
            e
        };
        let a = row_stochastic(&g, 0.2);
        let alpha_i = model.config.alpha_inference;
        let mut h = a.spmm(&xin);
        h.map_inplace(|v| v * (1.0 - alpha_i));
        ops::add_scaled_assign(&mut h, alpha_i, &xin);
        let want = ops::matmul(&h, &model.theta);
        for (a_, b_) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a_ - b_).abs() < 1e-10, "clipped inference mismatch");
        }
    }

    #[test]
    fn step_zero_inference_is_graph_free() {
        // steps = [0] means R̂ = I regardless of α_I (Eq. 16 first branch).
        let (g, x, labels, train_idx) = toy_setup(101);
        let mut cfg = quick_config();
        cfg.steps = vec![PropagationStep::Finite(0)];
        let mut rng = StdRng::seed_from_u64(102);
        let model = train_gcon(&cfg, &g, &x, &labels, &train_idx, 3, 1.0, 1e-3, &mut rng);
        // Ψ(Z) = 0 at m = 0: the report must mark the run noise-free.
        assert!(model.report.params.is_noise_free());
        let on_g = private_logits(&model, &g, &x);
        let on_empty = private_logits(&model, &Graph::empty(90), &x);
        assert_eq!(on_g.as_slice(), on_empty.as_slice());
    }
}
