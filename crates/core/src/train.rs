//! Algorithm 1: the complete GCON training pipeline.
//!
//! ```text
//! 1. X̄ ← FeatureEncoder(X, Y, d₁)          (edge-free, no budget)
//! 2. normalize rows of X̄ to unit L2
//! 3. Ã ← D⁻¹(A + I)
//! 4-7. Z ← (1/s)(Z_{m₁} ⊕ … ⊕ Z_{m_s}),  Z_m by the APPR/PPR recursion
//! 8. (Λ′, β) ← Theorem 1 (Eq. 17–24)
//! 9. B ← Algorithm 2 noise, column-wise
//! 10. L_priv ← Eq. (13)
//! 11. Θ_priv ← argmin L_priv              (optimizer-independent privacy)
//! ```

use crate::encoder::FeatureEncoder;
use crate::loss::ConvexLoss;
use crate::model::{GconConfig, OptimizerConfig, PrivacyReport, TrainedGcon};
use crate::noise::sample_noise_matrix;
use crate::objective::PerturbedObjective;
use crate::params::{CalibrationInput, TheoremOneParams};
use crate::propagation::concat_features_with_solver;
use crate::sensitivity::psi_z_clipped;
use gcon_graph::normalize::row_stochastic;
use gcon_graph::Graph;
use gcon_linalg::Mat;
use gcon_nn::{Adam, Optimizer};
use rand::Rng;

/// Minimizes a [`PerturbedObjective`] with full-batch Adam from `theta0`.
/// Returns `(Θ*, iterations, final gradient norm)`.
///
/// The objective is `(Λ̄+Λ′)`-strongly convex (Lemma 4 + Fact 1), so the
/// minimizer is unique; convergence is checked on the gradient norm.
pub fn minimize(
    obj: &PerturbedObjective<'_>,
    theta0: Mat,
    opt_cfg: &OptimizerConfig,
) -> (Mat, usize, f64) {
    let mut theta = theta0;
    let mut opt = Adam::new(opt_cfg.lr);
    let mut grad_norm = f64::INFINITY;
    let mut iters = 0;
    for it in 0..opt_cfg.max_iters {
        let (_, grad) = obj.value_and_grad(&theta);
        grad_norm = grad.frobenius_norm();
        iters = it;
        if grad_norm < opt_cfg.grad_tol {
            break;
        }
        opt.begin_step();
        opt.update(0, theta.as_mut_slice(), grad.as_slice());
    }
    (theta, iters, grad_norm)
}

/// Minimizes a [`PerturbedObjective`] with plain gradient descent plus
/// Armijo backtracking line search.
///
/// Exists to demonstrate (and test) the Theorem 1 remark that GCON's
/// privacy is *optimizer-independent*: this method and [`minimize`] (Adam)
/// converge to the same unique minimizer of the strongly-convex objective,
/// and neither touches the privacy calibration.
pub fn minimize_gd(
    obj: &PerturbedObjective<'_>,
    theta0: Mat,
    opt_cfg: &OptimizerConfig,
) -> (Mat, usize, f64) {
    let mut theta = theta0;
    let mut step = 1.0_f64;
    let mut grad_norm = f64::INFINITY;
    let mut iters = 0;
    for it in 0..opt_cfg.max_iters {
        let (value, grad) = obj.value_and_grad(&theta);
        grad_norm = grad.frobenius_norm();
        iters = it;
        if grad_norm < opt_cfg.grad_tol {
            break;
        }
        // Armijo backtracking: f(θ − t·g) ≤ f(θ) − 0.5·t·‖g‖².
        let g_sq = grad_norm * grad_norm;
        let mut t = (step * 2.0).min(1e3);
        let mut accepted = false;
        for _ in 0..60 {
            let mut cand = theta.clone();
            gcon_linalg::ops::add_scaled_assign(&mut cand, -t, &grad);
            if obj.value(&cand) <= value - 0.5 * t * g_sq {
                theta = cand;
                step = t;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            break; // step underflow: numerically at the optimum
        }
    }
    (theta, iters, grad_norm)
}

/// Trains GCON on `(graph, features, labels)` under `(eps, delta)` edge-DP.
///
/// - `features`: `n × d₀` raw node features (public).
/// - `labels`: class index per node (only `train_idx` entries are used as
///   ground truth; they are public in the problem setting of Sec. III).
/// - `train_idx`: indices of labeled training nodes.
///
/// Returns the released model; the privacy guarantee covers `Θ_priv` and is
/// independent of the optimizer (Theorem 1 remark).
#[allow(clippy::too_many_arguments)] // Algorithm 1 takes the full dataset tuple plus (ε, δ)
pub fn train_gcon<R: Rng + ?Sized>(
    config: &GconConfig,
    graph: &Graph,
    features: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> TrainedGcon {
    let a_tilde = row_stochastic(graph, config.clip_p);
    train_gcon_on_adjacency(
        config,
        graph,
        &a_tilde,
        features,
        labels,
        train_idx,
        num_classes,
        eps,
        delta,
        rng,
    )
}

/// [`train_gcon`] with the normalized adjacency `Ã` supplied by the caller.
///
/// `a_tilde` must equal `row_stochastic(graph, config.clip_p)`; callers that
/// train many candidates on one graph (the tuning grid, the figure
/// harnesses) pass a cached `Ã` so the normalization is not recomputed per
/// candidate.
#[allow(clippy::too_many_arguments)] // Algorithm 1 takes the full dataset tuple plus (ε, δ)
pub fn train_gcon_on_adjacency<R: Rng + ?Sized>(
    config: &GconConfig,
    graph: &Graph,
    a_tilde: &gcon_graph::Csr,
    features: &Mat,
    labels: &[usize],
    train_idx: &[usize],
    num_classes: usize,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> TrainedGcon {
    let n = graph.num_nodes();
    assert_eq!(features.rows(), n, "train_gcon: feature rows must match node count");
    assert_eq!(labels.len(), n, "train_gcon: need a label slot per node");
    assert_eq!(a_tilde.rows(), n, "train_gcon: adjacency/node count mismatch");
    assert!(!train_idx.is_empty(), "train_gcon: empty training set");
    assert!(num_classes >= 2);

    // Lines 1–2: encoder (public) + row normalization.
    let x_labeled = features.select_rows(train_idx);
    let y_labeled: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let encoder = FeatureEncoder::train(&config.encoder, &x_labeled, &y_labeled, num_classes, rng);
    let mut x_enc = encoder.encode(features);
    x_enc.normalize_rows_l2();

    // Lines 4–7: single-pass multi-scale propagation and concatenation
    // (with the Lemma 1 clip, inactive at the default p = 1/2).
    let z_all = concat_features_with_solver(
        a_tilde,
        &x_enc,
        config.alpha,
        &config.steps,
        config.ppr_solver,
    );

    // Training rows: the labeled set, optionally expanded with encoder
    // pseudo-labels (n₁ ∈ {n₀, n} in Appendix Q). Pseudo-labels are derived
    // from features only, so they stay edge-free.
    let (rows, row_labels): (Vec<usize>, Vec<usize>) = if config.expand_train_set {
        let pseudo = encoder.predict(features);
        let mut lbls = pseudo;
        for &i in train_idx {
            lbls[i] = labels[i];
        }
        ((0..n).collect(), lbls)
    } else {
        (train_idx.to_vec(), y_labeled.clone())
    };
    // `row_labels` is parallel to `rows` in both branches (the expanded
    // branch uses rows = 0..n, so per-node indexing coincides).
    let z_train = z_all.select_rows(&rows);
    let n1 = rows.len();
    let mut y_onehot = Mat::zeros(n1, num_classes);
    for (r, &label) in row_labels.iter().enumerate() {
        y_onehot.set(r, label, 1.0);
    }

    // Line 8: Theorem 1 calibration. The clipped Ψ_p reduces to Lemma 2's
    // Ψ(Z) at p = 1/2.
    let loss = ConvexLoss::new(config.loss, num_classes);
    let psi = psi_z_clipped(config.alpha, &config.steps, config.clip_p);
    let d = z_train.cols();
    let params = TheoremOneParams::compute(&CalibrationInput {
        eps,
        delta,
        omega: config.omega,
        lambda: config.lambda,
        n1,
        num_classes,
        dim: d,
        bounds: loss.bounds(),
        psi,
    });

    // Line 9: noise.
    let b = sample_noise_matrix(d, num_classes, params.beta, rng);

    // Lines 10–11: minimize the perturbed objective.
    let obj = PerturbedObjective::new(&z_train, &y_onehot, loss, params.lambda_total(), &b);
    let theta0 = Mat::zeros(d, num_classes);
    let (theta, opt_iterations, final_grad_norm) = minimize(&obj, theta0, &config.optimizer);

    TrainedGcon {
        theta,
        encoder,
        config: config.clone(),
        report: PrivacyReport { eps, delta, psi_z: psi, params, n1 },
        num_classes,
        opt_iterations,
        final_grad_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossKind;
    use crate::objective::PerturbedObjective;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minimizer_reaches_unique_optimum_from_different_inits() {
        let mut rng = StdRng::seed_from_u64(81);
        let mut z = Mat::uniform(20, 6, 1.0, &mut rng);
        z.normalize_rows_l2();
        let mut y = Mat::zeros(20, 3);
        for i in 0..20 {
            y.set(i, i % 3, 1.0);
        }
        let b = Mat::uniform(6, 3, 0.3, &mut rng);
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        let obj = PerturbedObjective::new(&z, &y, loss, 0.5, &b);
        let cfg = OptimizerConfig { lr: 0.05, max_iters: 5000, grad_tol: 1e-10 };
        let (t1, _, g1) = minimize(&obj, Mat::zeros(6, 3), &cfg);
        let (t2, _, g2) = minimize(&obj, Mat::uniform(6, 3, 2.0, &mut rng), &cfg);
        assert!(g1 < 1e-8, "g1 = {g1}");
        assert!(g2 < 1e-8, "g2 = {g2}");
        // Strong convexity ⇒ unique minimizer.
        for (a, b_) in t1.as_slice().iter().zip(t2.as_slice()) {
            assert!((a - b_).abs() < 1e-5, "minimizers differ: {a} vs {b_}");
        }
    }

    /// The Theorem 1 remark, operationalized: two different optimizers find
    /// the same Θ* for the same perturbed objective.
    #[test]
    fn adam_and_line_search_gd_agree_on_the_minimizer() {
        let mut rng = StdRng::seed_from_u64(83);
        let mut z = Mat::uniform(25, 5, 1.0, &mut rng);
        z.normalize_rows_l2();
        let mut y = Mat::zeros(25, 3);
        for i in 0..25 {
            y.set(i, i % 3, 1.0);
        }
        let b = Mat::uniform(5, 3, 0.4, &mut rng);
        let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3);
        let obj = PerturbedObjective::new(&z, &y, loss, 0.6, &b);
        let cfg = OptimizerConfig { lr: 0.05, max_iters: 8000, grad_tol: 1e-11 };
        let (t_adam, _, g1) = minimize(&obj, Mat::zeros(5, 3), &cfg);
        let (t_gd, _, g2) = minimize_gd(&obj, Mat::uniform(5, 3, 1.0, &mut rng), &cfg);
        // GD's Armijo test bottoms out in f64 rounding around ‖∇‖ ≈ 1e-8.
        assert!(g1 < 1e-8, "Adam grad {g1}");
        assert!(g2 < 1e-7, "GD grad {g2}");
        for (a, b_) in t_adam.as_slice().iter().zip(t_gd.as_slice()) {
            assert!((a - b_).abs() < 1e-6, "optimizers disagree: {a} vs {b_}");
        }
    }

    #[test]
    fn stationarity_condition_eq40_holds() {
        // At the optimum: B = −n₁(∇data + (Λ̄+Λ′)Θ) restated as ∇L_priv = 0.
        let mut rng = StdRng::seed_from_u64(82);
        let mut z = Mat::uniform(15, 4, 1.0, &mut rng);
        z.normalize_rows_l2();
        let mut y = Mat::zeros(15, 2);
        for i in 0..15 {
            y.set(i, i % 2, 1.0);
        }
        let b = Mat::uniform(4, 2, 0.5, &mut rng);
        let loss = ConvexLoss::new(LossKind::PseudoHuber { delta: 0.2 }, 2);
        let obj = PerturbedObjective::new(&z, &y, loss, 0.7, &b);
        let cfg = OptimizerConfig { lr: 0.05, max_iters: 8000, grad_tol: 1e-11 };
        let (theta, _, _) = minimize(&obj, Mat::zeros(4, 2), &cfg);
        let grad = obj.gradient(&theta);
        assert!(grad.frobenius_norm() < 1e-8);
    }

    fn tiny_dataset(seed: u64) -> (gcon_graph::Graph, Mat, Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, labels) = gcon_graph::generators::sbm_homophily(
            &gcon_graph::generators::SbmConfig {
                n: 60,
                num_edges: 150,
                num_classes: 2,
                homophily: 0.9,
                degree_exponent: 2.5,
            },
            &mut rng,
        );
        let x = Mat::from_fn(60, 4, |i, j| {
            let base = if labels[i] == j % 2 { 1.0 } else { 0.1 };
            base + 0.05 * ((i * 7 + j * 3) % 10) as f64
        });
        let train_idx: Vec<usize> = (0..30).collect();
        (g, x, labels, train_idx)
    }

    #[test]
    fn clipped_training_reduces_reported_sensitivity() {
        let (g, x, labels, idx) = tiny_dataset(91);
        let fast = |clip_p: f64| {
            let mut cfg = crate::GconConfig { clip_p, ..Default::default() };
            cfg.encoder.epochs = 20;
            cfg.optimizer.max_iters = 200;
            let mut rng = StdRng::seed_from_u64(92);
            train_gcon(&cfg, &g, &x, &labels, &idx, 2, 1.0, 1e-4, &mut rng)
        };
        let unclipped = fast(0.5);
        let clipped = fast(0.2);
        // Ψ_p = 2p·Ψ: p = 0.2 must report the 0.4× sensitivity.
        assert!(
            (clipped.report.psi_z - 0.4 * unclipped.report.psi_z).abs() < 1e-12,
            "clipped Ψ {} vs 0.4 × unclipped {}",
            clipped.report.psi_z,
            0.4 * unclipped.report.psi_z
        );
        // Lower sensitivity → larger Erlang rate (less noise) at the same ε.
        assert!(clipped.report.params.beta > unclipped.report.params.beta);
    }

    #[test]
    fn clipped_model_still_predicts_sanely() {
        let (g, x, labels, idx) = tiny_dataset(93);
        let mut cfg = crate::GconConfig { clip_p: 0.25, ..Default::default() };
        cfg.encoder.epochs = 40;
        cfg.optimizer.max_iters = 400;
        let mut rng = StdRng::seed_from_u64(94);
        let model = train_gcon(&cfg, &g, &x, &labels, &idx, 2, 4.0, 1e-4, &mut rng);
        let pred = crate::infer::public_predict(&model, &g, &x);
        let correct = (30..60).filter(|&i| pred[i] == labels[i]).count() as f64 / 30.0;
        assert!(correct > 0.5, "clipped-p accuracy {correct} at ε = 4 below chance");
    }
}
