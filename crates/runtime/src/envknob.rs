//! Shared warn-and-fallback environment-knob resolution.
//!
//! Every `GCON_*` tuning knob in the workspace follows the same contract:
//! unset means "use the built-in default", a parsable value overrides it,
//! and an unparsable value falls back to the default with **one** warning
//! on stderr (a misspelled knob must never silently change behaviour, and
//! must never abort a serving process). Before this module each crate
//! hand-rolled that match; now they all call [`env_knob`].
//!
//! The resolution core, [`resolve`], is pure — it takes the raw value as an
//! `Option<&str>` instead of reading the environment — because env vars are
//! process-global and the workspace's unit tests run in parallel threads.
//! Tests exercise [`resolve`] directly; only [`env_knob`] touches
//! [`std::env::var`], and callers cache its result in a `OnceLock` as
//! before.

/// Outcome of resolving one knob from a raw string: the value to use and,
/// when the raw string was present but unusable, the warning to emit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobResolution<T> {
    /// The value the caller should use.
    pub value: T,
    /// A human-readable diagnostic when the raw value was rejected;
    /// `None` when the knob was unset, empty, or parsed cleanly.
    pub warning: Option<String>,
}

/// Pure warn-and-fallback core: resolves `raw` (the knob's raw string, or
/// `None` when unset) against `parse`, falling back to `default`.
///
/// * unset or empty → `default`, no warning (empty mirrors the long-standing
///   `GCON_STORE_DTYPE`/`GCON_KERNEL_TIER` behaviour of treating `FOO=` as
///   unset);
/// * `parse` returns `Some(v)` → `v`, no warning;
/// * `parse` returns `None` → `default`, plus a warning naming the
///   component, the knob, the rejected value, what was `expected`, and the
///   `fallback` description actually used.
pub fn resolve<T>(
    component: &str,
    name: &str,
    raw: Option<&str>,
    default: T,
    expected: &str,
    fallback: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> KnobResolution<T> {
    match raw {
        None | Some("") => KnobResolution { value: default, warning: None },
        Some(v) => match parse(v) {
            Some(value) => KnobResolution { value, warning: None },
            None => KnobResolution {
                value: default,
                warning: Some(format!(
                    "{component}: unrecognized {name}={v:?} (expected {expected}); \
                     using {fallback}"
                )),
            },
        },
    }
}

/// Reads the environment variable `name` and resolves it via [`resolve`],
/// printing the warning (if any) to stderr. Callers wanting once-per-process
/// resolution wrap this in a `OnceLock`, which also bounds the warning to
/// one emission.
pub fn env_knob<T>(
    component: &str,
    name: &str,
    default: T,
    expected: &str,
    fallback: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    let raw = std::env::var(name).ok();
    let r = resolve(component, name, raw.as_deref(), default, expected, fallback, parse);
    if let Some(w) = r.warning {
        eprintln!("{w}");
    }
    r.value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_positive(v: &str) -> Option<usize> {
        v.parse::<usize>().ok().filter(|&n| n > 0)
    }

    #[test]
    fn unset_uses_default_silently() {
        let r = resolve("t", "K", None, 7usize, "an integer ≥ 1", "7", parse_positive);
        assert_eq!(r, KnobResolution { value: 7, warning: None });
    }

    #[test]
    fn empty_is_treated_as_unset() {
        let r = resolve("t", "K", Some(""), 7usize, "an integer ≥ 1", "7", parse_positive);
        assert_eq!(r, KnobResolution { value: 7, warning: None });
    }

    #[test]
    fn parsable_value_overrides() {
        let r = resolve("t", "K", Some("3"), 7usize, "an integer ≥ 1", "7", parse_positive);
        assert_eq!(r, KnobResolution { value: 3, warning: None });
    }

    #[test]
    fn rejected_value_warns_and_falls_back() {
        let r = resolve("t", "K", Some("zero"), 7usize, "an integer ≥ 1", "7", parse_positive);
        assert_eq!(r.value, 7);
        let w = r.warning.expect("rejected value must warn");
        assert!(w.contains("t: unrecognized K=\"zero\""), "warning was {w:?}");
        assert!(w.contains("expected an integer ≥ 1"));
        assert!(w.contains("using 7"));
    }

    #[test]
    fn out_of_range_value_is_rejected_by_the_parser() {
        // `parse` owns semantic validation, not just syntax: 0 is a parse
        // failure for a ≥ 1 knob.
        let r = resolve("t", "K", Some("0"), 7usize, "an integer ≥ 1", "7", parse_positive);
        assert_eq!(r.value, 7);
        assert!(r.warning.is_some());
    }
}
