#![warn(missing_docs)]
//! Shared execution layer for the GCON workspace.
//!
//! Every hot kernel in the workspace — dense GEMM (`gcon-linalg`), the
//! sparse×dense product behind graph convolution (`gcon-graph`), and the
//! APPR/PPR propagation recursion (`gcon-core`) — parallelizes the same way:
//! split the output rows into contiguous blocks and hand each block to a
//! thread. Before this crate existed each call site spawned a fresh scoped
//! thread per block, paying thread start-up and teardown on every product of
//! every training iteration.
//!
//! [`pool()`] instead exposes one lazily-initialized, process-wide worker
//! pool. Kernels submit row-block jobs through [`parallel_rows`] (or the
//! lower-level [`Pool::run`]); workers are parked between jobs and reused
//! across calls, so the steady-state cost of a parallel kernel is one
//! condvar wake-up instead of `threads` × `spawn`.
//!
//! The pool width defaults to the hardware parallelism and can be pinned
//! with the `GCON_THREADS` environment variable (read once, at first use;
//! `GCON_THREADS=1` disables worker threads entirely, which also makes
//! execution deterministic in thread count for profiling).
//!
//! Work submitted while *on* a pool worker (nested parallelism) runs inline
//! on the calling thread — the pool never deadlocks on reentrancy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Minimum number of scalar operations (e.g. `nnz · d` or `m·k·n`) below
/// which parallel kernels should run single-threaded; splitting tiny
/// products across threads costs more in wake-ups than it saves.
pub const PAR_THRESHOLD: usize = 1 << 16;

/// A chunked job: workers repeatedly claim chunk indices from `cursor` until
/// `num_chunks` is exhausted, calling the type-erased closure on each.
struct Job {
    /// Type-erased `&(dyn Fn(usize) + Sync)` with the lifetime transmuted
    /// away. Valid only while the submitting `Pool::run` call is blocked,
    /// which `Pool::run` guarantees by waiting for all workers to retire the
    /// job before returning.
    func: *const (dyn Fn(usize) + Sync),
    cursor: AtomicUsize,
    num_chunks: usize,
}

// SAFETY: `func` points at a `Sync` closure, and the raw pointer is only
// dereferenced while the submitting thread keeps the closure alive.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until the cursor runs out.
    fn drain(&self) {
        let f = unsafe { &*self.func };
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.num_chunks {
                return;
            }
            f(i);
        }
    }
}

/// State shared between the submitting thread and the workers.
struct Shared {
    slot: Mutex<JobSlot>,
    /// Workers wait here for a new generation.
    work_cv: Condvar,
    /// The submitter waits here for `active` to reach zero.
    done_cv: Condvar,
}

struct JobSlot {
    /// Incremented once per submitted job so parked workers can tell a new
    /// job from a spurious wake-up.
    generation: u64,
    job: Option<Arc<Job>>,
    /// Workers still attached to the current generation.
    active: usize,
    /// Set when any worker's chunk closure panicked during this generation.
    panicked: bool,
    /// Set by `Pool::drop`; workers exit their loop on the next wake-up.
    shutting_down: bool,
}

/// Locks a pool mutex, recovering from poisoning. Safe here because every
/// critical section only performs single-field assignments on the job-slot
/// bookkeeping (no invariant can be left half-updated by a panic), and job
/// panics themselves are caught before any lock is taken.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    /// True on pool worker threads; used to run nested submissions inline.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// True while this thread is inside `Pool::run` draining its own job.
    /// A chunk closure that submits again would self-deadlock on the
    /// non-reentrant `submit` mutex, so such nested submissions run inline.
    static IS_SUBMITTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The persistent worker pool. Obtain the process-wide instance with
/// [`pool()`]; constructing additional pools is possible (mostly for tests)
/// via [`Pool::with_threads`].
pub struct Pool {
    shared: Arc<Shared>,
    /// Number of background workers (the submitting thread also participates,
    /// so total parallelism is `workers + 1`).
    workers: usize,
    /// Serializes submissions from different threads.
    submit: Mutex<()>,
    /// Worker join handles, reclaimed by `Drop`.
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Builds a pool with `width` total threads of parallelism
    /// (`width - 1` background workers; the caller is the last lane).
    pub fn with_threads(width: usize) -> Self {
        let workers = width.max(1) - 1;
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                generation: 0,
                job: None,
                active: 0,
                panicked: false,
                shutting_down: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gcon-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("gcon-runtime: failed to spawn worker thread")
            })
            .collect();
        Self { shared, workers, submit: Mutex::new(()), handles }
    }

    /// Total parallel width (background workers + the submitting thread).
    #[inline]
    pub fn width(&self) -> usize {
        self.workers + 1
    }

    /// Runs `f(0), f(1), …, f(num_chunks - 1)` across the pool, returning
    /// once every chunk has completed. Chunks are claimed dynamically, so
    /// uneven chunk costs balance automatically.
    ///
    /// Calls from within a pool worker (nested parallelism) and trivial jobs
    /// (`num_chunks <= 1`, or a pool with no workers) run inline.
    pub fn run(&self, num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if num_chunks == 0 {
            return;
        }
        let nested = IS_POOL_WORKER.with(|w| w.get()) || IS_SUBMITTING.with(|s| s.get());
        if num_chunks == 1 || self.workers == 0 || nested {
            for i in 0..num_chunks {
                f(i);
            }
            return;
        }
        let _submission = lock_ignore_poison(&self.submit);
        // SAFETY: we erase the closure's lifetime to park it in the shared
        // slot; `run` does not return — or unwind — until every worker has
        // retired the job (active == 0): the submitter's own drain runs
        // under catch_unwind and the join loop below executes on both the
        // normal and the panic path, so the borrow outlives all uses.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let job = Arc::new(Job { func: erased, cursor: AtomicUsize::new(0), num_chunks });
        {
            let mut slot = lock_ignore_poison(&self.shared.slot);
            slot.generation += 1;
            slot.job = Some(Arc::clone(&job));
            slot.active = self.workers;
            slot.panicked = false;
        }
        self.shared.work_cv.notify_all();
        // The submitting thread is a full participant. A panicking chunk
        // must not unwind past the job while workers still hold the erased
        // pointer, so capture it and re-raise only after the join. The
        // IS_SUBMITTING flag routes any nested submission from a chunk on
        // this thread to the inline path above.
        IS_SUBMITTING.with(|s| s.set(true));
        let caller_panic =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.drain())).err();
        IS_SUBMITTING.with(|s| s.set(false));
        let worker_panicked = {
            let mut slot = lock_ignore_poison(&self.shared.slot);
            while slot.active > 0 {
                slot = self.shared.done_cv.wait(slot).unwrap_or_else(|p| p.into_inner());
            }
            slot.job = None;
            slot.panicked
        };
        if let Some(panic) = caller_panic {
            std::panic::resume_unwind(panic);
        }
        assert!(!worker_panicked, "gcon-runtime: a pool worker panicked while running a job");
    }
}

impl Drop for Pool {
    /// Parks no thread forever: wakes every worker with the shutdown flag
    /// and joins them, so ad-hoc pools (tests, scoped tools) release their
    /// OS threads. The process-wide [`pool()`] instance is never dropped.
    fn drop(&mut self) {
        {
            let mut slot = lock_ignore_poison(&self.shared.slot);
            slot.shutting_down = true;
            slot.generation += 1;
            slot.job = None;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut slot = lock_ignore_poison(&shared.slot);
            while slot.generation == seen_generation {
                slot = shared.work_cv.wait(slot).unwrap_or_else(|p| p.into_inner());
            }
            if slot.shutting_down {
                return;
            }
            seen_generation = slot.generation;
            slot.job.clone()
        };
        // A panicking job must not kill the worker before it checks in:
        // that would leave `active > 0` forever and deadlock the submitter.
        // Catch, record, and let the submitter re-raise after the join.
        let panicked = if let Some(job) = job {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.drain())).is_err()
        } else {
            false
        };
        let mut slot = lock_ignore_poison(&shared.slot);
        slot.panicked |= panicked;
        slot.active -= 1;
        if slot.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// The process-wide pool, created on first use.
///
/// Width is `GCON_THREADS` when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::with_threads(configured_width()))
}

/// The pool width [`pool()`] uses (without forcing pool creation). The
/// environment is consulted once and cached — this sits on every kernel's
/// inline-vs-parallel decision.
pub fn configured_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        std::env::var("GCON_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// Splits the row-major buffer `out` (`n` rows × `d` columns) into contiguous
/// row blocks and invokes `f(block, start_row, end_row)` for each block in
/// parallel on the process-wide pool. `block` covers exactly rows
/// `[start_row, end_row)` of `out`.
///
/// `work` is the caller's estimate of total scalar operations; jobs below
/// [`PAR_THRESHOLD`] run inline on the calling thread. Degenerate shapes
/// (`n == 0` or `d == 0`) return immediately without invoking `f`.
pub fn parallel_rows<F>(out: &mut [f64], n: usize, d: usize, work: usize, f: F)
where
    F: Fn(&mut [f64], usize, usize) + Sync,
{
    assert_eq!(out.len(), n * d, "parallel_rows: buffer is not n × d");
    if n == 0 || d == 0 {
        return;
    }
    // Decide inline-vs-parallel from the configured width so that a process
    // doing only sub-threshold work never pays pool startup.
    let threads = configured_width().min(n);
    if threads <= 1 || work < PAR_THRESHOLD {
        f(out, 0, n);
        return;
    }
    let pool = pool();
    // Over-decompose relative to the thread count so dynamic chunk claiming
    // can balance uneven rows (e.g. skewed CSR degree distributions).
    let chunks = (threads * 4).min(n);
    let rows_per_chunk = n.div_ceil(chunks);
    // Raw-pointer newtype so the closure can share the base across threads
    // without an int-to-pointer round trip (provenance-preserving).
    struct BasePtr(*mut f64);
    unsafe impl Send for BasePtr {}
    unsafe impl Sync for BasePtr {}
    impl BasePtr {
        // Accessor (rather than direct field use in the closure) so the
        // closure captures the Sync newtype, not the raw `*mut f64` field.
        fn get(&self) -> *mut f64 {
            self.0
        }
    }
    let base = BasePtr(out.as_mut_ptr());
    let run = |chunk: usize| {
        let start = chunk * rows_per_chunk;
        let end = ((chunk + 1) * rows_per_chunk).min(n);
        if start >= end {
            return;
        }
        // SAFETY: chunks index disjoint row ranges of `out`, and `out` is
        // borrowed mutably for the duration of `pool.run`.
        let block =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(start * d), (end - start) * d) };
        f(block, start, end);
    };
    pool.run(start_to_chunks(n, rows_per_chunk), &run);
}

#[inline]
fn start_to_chunks(n: usize, rows_per_chunk: usize) -> usize {
    n.div_ceil(rows_per_chunk)
}

thread_local! {
    /// Per-thread stack of reusable scratch buffers for [`with_scratch_f64`].
    /// A stack (rather than a single slot) keeps the helper re-entrant: a
    /// kernel that nests `with_scratch_f64` calls gets distinct buffers.
    static SCRATCH_F64: std::cell::RefCell<Vec<Vec<f64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with a thread-local scratch slice of exactly `len` elements.
///
/// The backing allocation is cached per thread and reused across calls, so a
/// kernel invoked from a [`parallel_rows`] chunk (pool workers are long-lived)
/// pays for the buffer once per thread, not once per call. The slice's
/// contents are **unspecified** on entry — callers must fully overwrite
/// whatever region they read back. Re-entrant: nested calls receive distinct
/// buffers. If `f` panics, the buffer is simply dropped (never handed out
/// again half-initialized).
pub fn with_scratch_f64<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = SCRATCH_F64.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    buf.resize(len, 0.0);
    let out = f(&mut buf[..len]);
    SCRATCH_F64.with(|s| s.borrow_mut().push(buf));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_rows_fills_every_row_once() {
        let n = 1000;
        let d = 100; // n * d > PAR_THRESHOLD → parallel path
        let mut out = vec![0.0; n * d];
        parallel_rows(&mut out, n, d, n * d, |block, start, end| {
            assert_eq!(block.len(), (end - start) * d);
            for (r, row) in block.chunks_mut(d).enumerate() {
                for v in row.iter_mut() {
                    *v += (start + r) as f64;
                }
            }
        });
        for (i, row) in out.chunks(d).enumerate() {
            assert!(row.iter().all(|&v| v == i as f64), "row {i} wrong or touched twice");
        }
    }

    #[test]
    fn parallel_rows_small_work_runs_inline() {
        let mut out = vec![0.0; 4 * 2];
        parallel_rows(&mut out, 4, 2, 8, |block, start, end| {
            assert_eq!((start, end), (0, 4));
            block.fill(1.0);
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn parallel_rows_degenerate_shapes() {
        let mut empty: Vec<f64> = Vec::new();
        parallel_rows(&mut empty, 0, 5, 0, |_, _, _| panic!("must not run"));
        parallel_rows(&mut empty, 5, 0, 0, |_, _, _| panic!("must not run"));
    }

    #[test]
    fn pool_run_executes_each_chunk_exactly_once() {
        let pool = Pool::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = Pool::with_threads(3);
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            pool.run(17, &|i| {
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..17).sum::<usize>() + 17 * round);
        }
    }

    #[test]
    fn nested_submission_runs_inline_without_deadlock() {
        // Explicit multi-worker pool: the global pool degenerates to zero
        // workers on single-core machines, which would make this test
        // vacuous. Nested chunks land on BOTH worker threads (IS_POOL_WORKER
        // guard) and the submitting thread (IS_SUBMITTING guard); either
        // re-entering the pool for real would deadlock on `submit`.
        let pool = Pool::with_threads(4);
        assert_eq!(pool.width(), 4);
        let outer = AtomicUsize::new(0);
        pool.run(16, &|_| {
            let inner = AtomicUsize::new(0);
            pool.run(4, &|j| {
                inner.fetch_add(j, Ordering::Relaxed);
            });
            assert_eq!(inner.load(Ordering::Relaxed), 6);
            outer.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outer.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        let pool = Pool::with_threads(4);
        // A chunk panics (it may land on a worker or on the submitter);
        // run() must join every thread, then re-raise exactly one panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(32, &|i| {
                if i == 13 {
                    panic!("chunk 13 exploded");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the submitter");
        // The pool stays fully usable afterwards: no dead workers, no
        // poisoned bookkeeping, no stale `panicked` flag.
        for _ in 0..5 {
            let sum = AtomicUsize::new(0);
            pool.run(16, &|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..16).sum::<usize>());
        }
    }

    #[test]
    fn scratch_buffer_has_exact_length_and_nests() {
        with_scratch_f64(7, |outer| {
            assert_eq!(outer.len(), 7);
            outer.fill(1.0);
            with_scratch_f64(3, |inner| {
                assert_eq!(inner.len(), 3);
                inner.fill(2.0);
            });
            // The nested call received a distinct buffer.
            assert!(outer.iter().all(|&v| v == 1.0));
        });
        // Reuse with a different length still yields the exact length.
        with_scratch_f64(11, |buf| assert_eq!(buf.len(), 11));
        with_scratch_f64(0, |buf| assert!(buf.is_empty()));
    }

    #[test]
    fn width_is_at_least_one() {
        assert!(pool().width() >= 1);
        assert!(configured_width() >= 1);
        assert_eq!(Pool::with_threads(1).width(), 1);
    }
}
