#![deny(missing_docs)]
//! Shared execution layer for the GCON workspace.
//!
//! Every hot kernel in the workspace — dense GEMM (`gcon-linalg`), the
//! sparse×dense product behind graph convolution (`gcon-graph`), and the
//! APPR/PPR propagation recursion (`gcon-core`) — parallelizes the same way:
//! split the output rows into contiguous blocks and hand each block to a
//! thread. Before this crate existed each call site spawned a fresh scoped
//! thread per block, paying thread start-up and teardown on every product of
//! every training iteration.
//!
//! [`pool()`] instead exposes one lazily-initialized, process-wide worker
//! pool. Kernels submit row-block jobs through [`parallel_rows`] (or the
//! lower-level [`Pool::run`]); workers are parked between jobs and reused
//! across calls, so the steady-state cost of a parallel kernel is one
//! condvar wake-up instead of `threads` × `spawn`.
//!
//! The pool width defaults to the hardware parallelism and can be pinned
//! with the `GCON_THREADS` environment variable (read once, at first use;
//! `GCON_THREADS=1` disables worker threads entirely, which also makes
//! execution deterministic in thread count for profiling).
//!
//! Work submitted while *on* a pool worker (nested parallelism) runs inline
//! on the calling thread — the pool never deadlocks on reentrancy.
//!
//! # Kernel dispatch tiers
//!
//! Besides the thread pool, this crate owns the process-wide **kernel tier**:
//! every SIMD-dispatched kernel in the workspace (`gcon-linalg::ops`,
//! `gcon-linalg::vecops`, `gcon-graph::csr`) is compiled from one portable
//! source at three feature levels — [`KernelTier::Scalar`] (baseline SSE2 on
//! x86-64), [`KernelTier::Avx2`] (`avx2,fma`, 4-wide f64) and
//! [`KernelTier::Avx512`] (`avx512f,avx512vl,avx512dq,avx512bw`, 8-wide
//! f64) — and selects one at run time via [`kernel_tier`]. The tier is resolved once per process from CPU
//! feature detection, can be pinned with the `GCON_KERNEL_TIER` environment
//! variable (`scalar` | `avx2` | `avx512`; requests above the host's feature
//! set warn and clamp to the best available tier), and can be switched by
//! tests and benchmarks with [`set_kernel_tier`]. Because every tier compiles
//! the *same* Rust source under strict FP semantics (no reassociation, no
//! mul-add contraction — autovectorization only), all tiers produce
//! **byte-identical** results; the tier changes throughput, never values.
//! The conformance suite in `tests/kernel_properties.rs` and the fingerprint
//! matrix in `tests/runtime_equivalence.rs` pin this.

pub mod envknob;

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Minimum number of scalar operations (e.g. `nnz · d` or `m·k·n`) below
/// which parallel kernels should run single-threaded; splitting tiny
/// products across threads costs more in wake-ups than it saves.
pub const PAR_THRESHOLD: usize = 1 << 16;

/// A chunked job: workers repeatedly claim chunk indices from `cursor` until
/// `num_chunks` is exhausted, calling the type-erased closure on each.
struct Job {
    /// Type-erased `&(dyn Fn(usize) + Sync)` with the lifetime transmuted
    /// away. Valid only while the submitting `Pool::run` call is blocked,
    /// which `Pool::run` guarantees by waiting for all workers to retire the
    /// job before returning.
    func: *const (dyn Fn(usize) + Sync),
    cursor: AtomicUsize,
    num_chunks: usize,
}

// SAFETY: `func` points at a `Sync` closure, and the raw pointer is only
// dereferenced while the submitting thread keeps the closure alive.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until the cursor runs out.
    fn drain(&self) {
        let f = unsafe { &*self.func };
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.num_chunks {
                return;
            }
            f(i);
        }
    }
}

/// State shared between the submitting thread and the workers.
struct Shared {
    slot: Mutex<JobSlot>,
    /// Workers wait here for a new generation.
    work_cv: Condvar,
    /// The submitter waits here for `active` to reach zero.
    done_cv: Condvar,
}

struct JobSlot {
    /// Incremented once per submitted job so parked workers can tell a new
    /// job from a spurious wake-up.
    generation: u64,
    job: Option<Arc<Job>>,
    /// Workers still attached to the current generation.
    active: usize,
    /// Set when any worker's chunk closure panicked during this generation.
    panicked: bool,
    /// Set by `Pool::drop`; workers exit their loop on the next wake-up.
    shutting_down: bool,
}

/// Locks a pool mutex, recovering from poisoning. Safe here because every
/// critical section only performs single-field assignments on the job-slot
/// bookkeeping (no invariant can be left half-updated by a panic), and job
/// panics themselves are caught before any lock is taken.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    /// True on pool worker threads; used to run nested submissions inline.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// True while this thread is inside `Pool::run` draining its own job.
    /// A chunk closure that submits again would self-deadlock on the
    /// non-reentrant `submit` mutex, so such nested submissions run inline.
    static IS_SUBMITTING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The persistent worker pool. Obtain the process-wide instance with
/// [`pool()`]; constructing additional pools is possible (mostly for tests)
/// via [`Pool::with_threads`].
pub struct Pool {
    shared: Arc<Shared>,
    /// Number of background workers (the submitting thread also participates,
    /// so total parallelism is `workers + 1`).
    workers: usize,
    /// Serializes submissions from different threads.
    submit: Mutex<()>,
    /// Worker join handles, reclaimed by `Drop`.
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Builds a pool with `width` total threads of parallelism
    /// (`width - 1` background workers; the caller is the last lane).
    pub fn with_threads(width: usize) -> Self {
        let workers = width.max(1) - 1;
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                generation: 0,
                job: None,
                active: 0,
                panicked: false,
                shutting_down: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gcon-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("gcon-runtime: failed to spawn worker thread")
            })
            .collect();
        Self { shared, workers, submit: Mutex::new(()), handles }
    }

    /// Total parallel width (background workers + the submitting thread).
    #[inline]
    pub fn width(&self) -> usize {
        self.workers + 1
    }

    /// Runs `f(0), f(1), …, f(num_chunks - 1)` across the pool, returning
    /// once every chunk has completed. Chunks are claimed dynamically, so
    /// uneven chunk costs balance automatically.
    ///
    /// Calls from within a pool worker (nested parallelism) and trivial jobs
    /// (`num_chunks <= 1`, or a pool with no workers) run inline.
    pub fn run(&self, num_chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if num_chunks == 0 {
            return;
        }
        let nested = IS_POOL_WORKER.with(|w| w.get()) || IS_SUBMITTING.with(|s| s.get());
        if num_chunks == 1 || self.workers == 0 || nested {
            for i in 0..num_chunks {
                f(i);
            }
            return;
        }
        let _submission = lock_ignore_poison(&self.submit);
        // SAFETY: we erase the closure's lifetime to park it in the shared
        // slot; `run` does not return — or unwind — until every worker has
        // retired the job (active == 0): the submitter's own drain runs
        // under catch_unwind and the join loop below executes on both the
        // normal and the panic path, so the borrow outlives all uses.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let job = Arc::new(Job { func: erased, cursor: AtomicUsize::new(0), num_chunks });
        {
            let mut slot = lock_ignore_poison(&self.shared.slot);
            slot.generation += 1;
            slot.job = Some(Arc::clone(&job));
            slot.active = self.workers;
            slot.panicked = false;
        }
        self.shared.work_cv.notify_all();
        // The submitting thread is a full participant. A panicking chunk
        // must not unwind past the job while workers still hold the erased
        // pointer, so capture it and re-raise only after the join. The
        // IS_SUBMITTING flag routes any nested submission from a chunk on
        // this thread to the inline path above.
        IS_SUBMITTING.with(|s| s.set(true));
        let caller_panic =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.drain())).err();
        IS_SUBMITTING.with(|s| s.set(false));
        let worker_panicked = {
            let mut slot = lock_ignore_poison(&self.shared.slot);
            while slot.active > 0 {
                slot = self.shared.done_cv.wait(slot).unwrap_or_else(|p| p.into_inner());
            }
            slot.job = None;
            slot.panicked
        };
        if let Some(panic) = caller_panic {
            std::panic::resume_unwind(panic);
        }
        assert!(!worker_panicked, "gcon-runtime: a pool worker panicked while running a job");
    }
}

impl Drop for Pool {
    /// Parks no thread forever: wakes every worker with the shutdown flag
    /// and joins them, so ad-hoc pools (tests, scoped tools) release their
    /// OS threads. The process-wide [`pool()`] instance is never dropped.
    fn drop(&mut self) {
        {
            let mut slot = lock_ignore_poison(&self.shared.slot);
            slot.shutting_down = true;
            slot.generation += 1;
            slot.job = None;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut slot = lock_ignore_poison(&shared.slot);
            while slot.generation == seen_generation {
                slot = shared.work_cv.wait(slot).unwrap_or_else(|p| p.into_inner());
            }
            if slot.shutting_down {
                return;
            }
            seen_generation = slot.generation;
            slot.job.clone()
        };
        // A panicking job must not kill the worker before it checks in:
        // that would leave `active > 0` forever and deadlock the submitter.
        // Catch, record, and let the submitter re-raise after the join.
        let panicked = if let Some(job) = job {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.drain())).is_err()
        } else {
            false
        };
        let mut slot = lock_ignore_poison(&shared.slot);
        slot.panicked |= panicked;
        slot.active -= 1;
        if slot.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// The process-wide pool, created on first use.
///
/// Width is `GCON_THREADS` when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::with_threads(configured_width()))
}

/// The pool width [`pool()`] uses (without forcing pool creation). The
/// environment is consulted once and cached — this sits on every kernel's
/// inline-vs-parallel decision.
pub fn configured_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        envknob::env_knob(
            "gcon-runtime",
            "GCON_THREADS",
            hw,
            "an integer ≥ 1",
            "the hardware parallelism",
            |v| v.parse::<usize>().ok().filter(|&n| n > 0),
        )
    })
}

/// Splits the row-major buffer `out` (`n` rows × `d` columns) into contiguous
/// row blocks and invokes `f(block, start_row, end_row)` for each block in
/// parallel on the process-wide pool. `block` covers exactly rows
/// `[start_row, end_row)` of `out`.
///
/// `work` is the caller's estimate of total scalar operations; jobs below
/// [`PAR_THRESHOLD`] run inline on the calling thread. Degenerate shapes
/// (`n == 0` or `d == 0`) return immediately without invoking `f`.
pub fn parallel_rows<T, F>(out: &mut [T], n: usize, d: usize, work: usize, f: F)
where
    T: Send,
    F: Fn(&mut [T], usize, usize) + Sync,
{
    assert_eq!(out.len(), n * d, "parallel_rows: buffer is not n × d");
    if n == 0 || d == 0 {
        return;
    }
    // Decide inline-vs-parallel from the configured width so that a process
    // doing only sub-threshold work never pays pool startup.
    let threads = configured_width().min(n);
    if threads <= 1 || work < PAR_THRESHOLD {
        f(out, 0, n);
        return;
    }
    let pool = pool();
    // Over-decompose relative to the thread count so dynamic chunk claiming
    // can balance uneven rows (e.g. skewed CSR degree distributions).
    let chunks = (threads * 4).min(n);
    let rows_per_chunk = n.div_ceil(chunks);
    // Raw-pointer newtype so the closure can share the base across threads
    // without an int-to-pointer round trip (provenance-preserving).
    struct BasePtr<T>(*mut T);
    unsafe impl<T: Send> Send for BasePtr<T> {}
    unsafe impl<T: Send> Sync for BasePtr<T> {}
    impl<T> BasePtr<T> {
        // Accessor (rather than direct field use in the closure) so the
        // closure captures the Sync newtype, not the raw `*mut T` field.
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let base = BasePtr(out.as_mut_ptr());
    let run = |chunk: usize| {
        let start = chunk * rows_per_chunk;
        let end = ((chunk + 1) * rows_per_chunk).min(n);
        if start >= end {
            return;
        }
        // SAFETY: chunks index disjoint row ranges of `out`, and `out` is
        // borrowed mutably for the duration of `pool.run`.
        let block =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(start * d), (end - start) * d) };
        f(block, start, end);
    };
    pool.run(start_to_chunks(n, rows_per_chunk), &run);
}

#[inline]
fn start_to_chunks(n: usize, rows_per_chunk: usize) -> usize {
    n.div_ceil(rows_per_chunk)
}

thread_local! {
    /// Per-thread stack of reusable scratch buffers for [`with_scratch_f64`].
    /// A stack (rather than a single slot) keeps the helper re-entrant: a
    /// kernel that nests `with_scratch_f64` calls gets distinct buffers.
    static SCRATCH_F64: std::cell::RefCell<Vec<Vec<f64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with a thread-local scratch slice of exactly `len` elements.
///
/// The backing allocation is cached per thread and reused across calls, so a
/// kernel invoked from a [`parallel_rows`] chunk (pool workers are long-lived)
/// pays for the buffer once per thread, not once per call. The slice's
/// contents are **unspecified** on entry — callers must fully overwrite
/// whatever region they read back. Re-entrant: nested calls receive distinct
/// buffers. If `f` panics, the buffer is simply dropped (never handed out
/// again half-initialized).
pub fn with_scratch_f64<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = SCRATCH_F64.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    buf.resize(len, 0.0);
    let out = f(&mut buf[..len]);
    SCRATCH_F64.with(|s| s.borrow_mut().push(buf));
    out
}

thread_local! {
    /// Per-thread scratch stack for [`with_scratch_f32`] — the f32 twin of
    /// [`SCRATCH_F64`], kept separate so mixed-precision kernels nesting both
    /// dtypes never reinterpret each other's allocations.
    static SCRATCH_F32: std::cell::RefCell<Vec<Vec<f32>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The `f32` twin of [`with_scratch_f64`]: runs `f` with a thread-local
/// scratch slice of exactly `len` `f32` elements, cached per thread and
/// re-entrant, with the same unspecified-contents contract.
pub fn with_scratch_f32<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = SCRATCH_F32.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    buf.resize(len, 0.0);
    let out = f(&mut buf[..len]);
    SCRATCH_F32.with(|s| s.borrow_mut().push(buf));
    out
}

/// A SIMD compilation level for the workspace's compute kernels.
///
/// Tiers are totally ordered by capability (`Scalar < Avx2 < Avx512`); a
/// host "supports" every tier up to its detected maximum, and the scalar
/// tier is supported everywhere (it is the portable baseline build). See the
/// crate docs for the determinism guarantee: tiers are interchangeable
/// bit-for-bit, so selecting one is purely a throughput decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// Portable baseline build (SSE2 on x86-64; whatever the target's
    /// default feature set is elsewhere). Always available.
    Scalar = 0,
    /// `target_feature(enable = "avx2,fma")` — 4-wide f64 / 8-wide f32
    /// vectors.
    Avx2 = 1,
    /// `target_feature(enable = "avx512f,avx512vl,avx512dq,avx512bw")` —
    /// 8-wide f64 / 16-wide f32 vectors, with 128/256-bit EVEX forms available so
    /// narrower unroll patterns don't degrade (the `skylake-avx512`
    /// baseline, present on every AVX-512 server/desktop core).
    Avx512 = 2,
}

impl KernelTier {
    /// The canonical lowercase name, as accepted by `GCON_KERNEL_TIER`.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelTier {
    type Err = ();

    /// Case-insensitive parse of `scalar` / `avx2` / `avx512`.
    fn from_str(s: &str) -> Result<Self, ()> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Ok(KernelTier::Scalar),
            "avx2" => Ok(KernelTier::Avx2),
            "avx512" | "avx512f" => Ok(KernelTier::Avx512),
            _ => Err(()),
        }
    }
}

/// The highest tier this CPU supports, from runtime feature detection.
pub fn max_available_tier() -> KernelTier {
    static MAX: OnceLock<KernelTier> = OnceLock::new();
    *MAX.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512bw")
            {
                return KernelTier::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return KernelTier::Avx2;
            }
        }
        KernelTier::Scalar
    })
}

/// Every tier this host can run, ascending ([`KernelTier::Scalar`] first).
/// Conformance tests and the kernel bench iterate this list so absent tiers
/// are skipped rather than failed.
pub fn available_tiers() -> &'static [KernelTier] {
    match max_available_tier() {
        KernelTier::Scalar => &[KernelTier::Scalar],
        KernelTier::Avx2 => &[KernelTier::Scalar, KernelTier::Avx2],
        KernelTier::Avx512 => &[KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512],
    }
}

/// Pure tier-selection rule: an explicit request above the host's maximum is
/// clamped (second component `true`); no request means the best available
/// tier. Exposed so the clamp logic is unit-testable on every host,
/// including the `avx512`-requested-on-scalar-host case that cannot be
/// produced end-to-end on an AVX-512 machine.
pub fn resolve_tier(
    requested: Option<KernelTier>,
    max_available: KernelTier,
) -> (KernelTier, bool) {
    match requested {
        Some(t) if t > max_available => (max_available, true),
        Some(t) => (t, false),
        None => (max_available, false),
    }
}

/// Sentinel for "not yet resolved" in [`KERNEL_TIER`].
const TIER_UNRESOLVED: u8 = u8::MAX;

/// The active tier as a `u8` (`TIER_UNRESOLVED` until first use). A relaxed
/// atomic so the dispatch check on every kernel entry is one load.
static KERNEL_TIER: AtomicU8 = AtomicU8::new(TIER_UNRESOLVED);

fn tier_from_u8(raw: u8) -> KernelTier {
    match raw {
        0 => KernelTier::Scalar,
        1 => KernelTier::Avx2,
        _ => KernelTier::Avx512,
    }
}

/// First-use resolution of the tier from `GCON_KERNEL_TIER` + detection.
/// Behind a `OnceLock` so the clamp / parse warnings print exactly once.
fn initial_tier() -> KernelTier {
    static INIT: OnceLock<KernelTier> = OnceLock::new();
    *INIT.get_or_init(|| {
        let requested = match std::env::var("GCON_KERNEL_TIER") {
            Ok(v) if !v.is_empty() => match v.parse::<KernelTier>() {
                Ok(t) => Some(t),
                Err(()) => {
                    eprintln!(
                        "gcon-runtime: unrecognized GCON_KERNEL_TIER={v:?} \
                         (expected scalar|avx2|avx512); using best available tier"
                    );
                    None
                }
            },
            _ => None,
        };
        let (tier, clamped) = resolve_tier(requested, max_available_tier());
        if clamped {
            eprintln!(
                "gcon-runtime: GCON_KERNEL_TIER={} is not supported by this CPU; \
                 clamping to {tier}",
                requested.expect("clamp implies an explicit request"),
            );
        }
        tier
    })
}

/// The kernel dispatch tier in effect for this process.
///
/// Resolved on first call: `GCON_KERNEL_TIER` if set (clamped to the host's
/// capabilities with a warning when necessary), otherwise the best detected
/// tier. [`set_kernel_tier`] overrides it afterwards. Never exceeds
/// [`max_available_tier`], so dispatching to the tier's `#[target_feature]`
/// compilation is always sound.
#[inline]
pub fn kernel_tier() -> KernelTier {
    let raw = KERNEL_TIER.load(Ordering::Relaxed);
    if raw != TIER_UNRESOLVED {
        return tier_from_u8(raw);
    }
    let tier = initial_tier();
    // compare_exchange, not a blind store: a concurrent `set_kernel_tier`
    // pin must not be clobbered by first-use resolution racing with it.
    match KERNEL_TIER.compare_exchange(
        TIER_UNRESOLVED,
        tier as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    ) {
        Ok(_) => tier,
        Err(pinned) => tier_from_u8(pinned),
    }
}

/// Pins the dispatch tier for the whole process — the test/bench hook behind
/// the cross-tier conformance suite and the per-tier kernel sweep.
///
/// # Panics
/// Panics if `tier` exceeds [`max_available_tier`]: dispatching a tier the
/// CPU lacks would execute illegal instructions. (The `GCON_KERNEL_TIER`
/// environment path clamps instead of panicking; this function is for
/// in-process callers that are expected to consult [`available_tiers`].)
///
/// Safe to call at any time: kernels read the tier once per entry, and all
/// tiers produce byte-identical results, so a concurrent switch changes
/// which compilation later calls run, never what they compute.
pub fn set_kernel_tier(tier: KernelTier) {
    assert!(
        tier <= max_available_tier(),
        "set_kernel_tier: {tier} is not available on this CPU (max {})",
        max_available_tier()
    );
    KERNEL_TIER.store(tier as u8, Ordering::Relaxed);
}

/// Runs `f` once per tier in [`available_tiers`] (ascending), with the
/// dispatch pinned to that tier via [`set_kernel_tier`] — the loop behind
/// the cross-tier conformance tests and the per-tier kernel bench. The
/// entry tier is restored when the loop finishes **or unwinds**, so a
/// failing assertion inside `f` does not leave the process pinned to an
/// arbitrary tier for unrelated code.
pub fn for_each_available_tier(mut f: impl FnMut(KernelTier)) {
    struct RestoreTier(KernelTier);
    impl Drop for RestoreTier {
        fn drop(&mut self) {
            set_kernel_tier(self.0);
        }
    }
    let _restore = RestoreTier(kernel_tier());
    for &tier in available_tiers() {
        set_kernel_tier(tier);
        f(tier);
    }
}

/// Declares `$name` as a tier-dispatching front for the `#[inline(always)]`
/// kernel body `$impl_fn`: on x86-64 the body is additionally compiled under
/// `#[target_feature(enable = "avx2,fma")]` (as `$avx2`) and
/// `#[target_feature(enable = "avx512f,avx512vl,avx512dq,avx512bw")]` (as
/// `$avx512`), and the active
/// [`kernel_tier`] picks the compilation at run time. Everywhere else the
/// portable build is used unconditionally.
///
/// Still autovectorization-only — no intrinsics — and numerically
/// *identical* across tiers: Rust keeps strict FP semantics (no
/// reassociation, no mul-add contraction), so wider registers change
/// throughput, never results.
///
/// Doc comments and attributes before `fn` (e.g. `#[inline]`) apply to the
/// dispatching front. An optional `-> Ret` return type is supported.
///
/// A leading `max_avx2` token declares a **capped** kernel: the
/// [`KernelTier::Avx512`] tier runs the AVX2 compilation instead of an
/// AVX-512 one. Use it only with a measured justification (e.g. a
/// gather-bound loop that LLVM's AVX-512 cost model mis-vectorizes) — the
/// cap is a pure throughput decision; results are identical across
/// compilations either way, so conformance and fingerprint guarantees are
/// unaffected.
#[macro_export]
macro_rules! tier_dispatch {
    (max_avx2 $(#[$meta:meta])* $vis:vis fn $name:ident / $avx2:ident / $impl_fn:ident
        ($($arg:ident : $ty:ty),* $(,)?) $(-> $ret:ty)?) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        fn $avx2($($arg: $ty),*) $(-> $ret)? {
            $impl_fn($($arg),*)
        }

        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            match $crate::kernel_tier() {
                // SAFETY: an Avx2-or-higher tier implies avx2+fma are
                // present (tiers never exceed the detected feature set).
                $crate::KernelTier::Avx512 | $crate::KernelTier::Avx2 => {
                    return unsafe { $avx2($($arg),*) };
                }
                $crate::KernelTier::Scalar => {}
            }
            $impl_fn($($arg),*)
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident / $avx2:ident / $avx512:ident / $impl_fn:ident
        ($($arg:ident : $ty:ty),* $(,)?) $(-> $ret:ty)?) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        fn $avx2($($arg: $ty),*) $(-> $ret)? {
            $impl_fn($($arg),*)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq,avx512bw")]
        fn $avx512($($arg: $ty),*) $(-> $ret)? {
            $impl_fn($($arg),*)
        }

        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            match $crate::kernel_tier() {
                // SAFETY: `kernel_tier()` never exceeds the detected feature
                // set, so the CPU supports every feature the callee is
                // compiled with.
                $crate::KernelTier::Avx512 => return unsafe { $avx512($($arg),*) },
                $crate::KernelTier::Avx2 => return unsafe { $avx2($($arg),*) },
                $crate::KernelTier::Scalar => {}
            }
            $impl_fn($($arg),*)
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_rows_fills_every_row_once() {
        let n = 1000;
        let d = 100; // n * d > PAR_THRESHOLD → parallel path
        let mut out = vec![0.0; n * d];
        parallel_rows(&mut out, n, d, n * d, |block, start, end| {
            assert_eq!(block.len(), (end - start) * d);
            for (r, row) in block.chunks_mut(d).enumerate() {
                for v in row.iter_mut() {
                    *v += (start + r) as f64;
                }
            }
        });
        for (i, row) in out.chunks(d).enumerate() {
            assert!(row.iter().all(|&v| v == i as f64), "row {i} wrong or touched twice");
        }
    }

    #[test]
    fn parallel_rows_small_work_runs_inline() {
        let mut out = vec![0.0; 4 * 2];
        parallel_rows(&mut out, 4, 2, 8, |block, start, end| {
            assert_eq!((start, end), (0, 4));
            block.fill(1.0);
        });
        assert!(out.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn parallel_rows_degenerate_shapes() {
        let mut empty: Vec<f64> = Vec::new();
        parallel_rows(&mut empty, 0, 5, 0, |_, _, _| panic!("must not run"));
        parallel_rows(&mut empty, 5, 0, 0, |_, _, _| panic!("must not run"));
    }

    #[test]
    fn pool_run_executes_each_chunk_exactly_once() {
        let pool = Pool::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "chunk {i}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = Pool::with_threads(3);
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            pool.run(17, &|i| {
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..17).sum::<usize>() + 17 * round);
        }
    }

    #[test]
    fn nested_submission_runs_inline_without_deadlock() {
        // Explicit multi-worker pool: the global pool degenerates to zero
        // workers on single-core machines, which would make this test
        // vacuous. Nested chunks land on BOTH worker threads (IS_POOL_WORKER
        // guard) and the submitting thread (IS_SUBMITTING guard); either
        // re-entering the pool for real would deadlock on `submit`.
        let pool = Pool::with_threads(4);
        assert_eq!(pool.width(), 4);
        let outer = AtomicUsize::new(0);
        pool.run(16, &|_| {
            let inner = AtomicUsize::new(0);
            pool.run(4, &|j| {
                inner.fetch_add(j, Ordering::Relaxed);
            });
            assert_eq!(inner.load(Ordering::Relaxed), 6);
            outer.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outer.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        let pool = Pool::with_threads(4);
        // A chunk panics (it may land on a worker or on the submitter);
        // run() must join every thread, then re-raise exactly one panic.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(32, &|i| {
                if i == 13 {
                    panic!("chunk 13 exploded");
                }
            });
        }));
        assert!(result.is_err(), "the panic must propagate to the submitter");
        // The pool stays fully usable afterwards: no dead workers, no
        // poisoned bookkeeping, no stale `panicked` flag.
        for _ in 0..5 {
            let sum = AtomicUsize::new(0);
            pool.run(16, &|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..16).sum::<usize>());
        }
    }

    #[test]
    fn scratch_buffer_has_exact_length_and_nests() {
        with_scratch_f64(7, |outer| {
            assert_eq!(outer.len(), 7);
            outer.fill(1.0);
            with_scratch_f64(3, |inner| {
                assert_eq!(inner.len(), 3);
                inner.fill(2.0);
            });
            // The nested call received a distinct buffer.
            assert!(outer.iter().all(|&v| v == 1.0));
        });
        // Reuse with a different length still yields the exact length.
        with_scratch_f64(11, |buf| assert_eq!(buf.len(), 11));
        with_scratch_f64(0, |buf| assert!(buf.is_empty()));
    }

    #[test]
    fn f32_scratch_is_independent_of_f64_scratch() {
        with_scratch_f64(5, |d| {
            d.fill(3.0);
            with_scratch_f32(5, |s| {
                assert_eq!(s.len(), 5);
                s.fill(7.0);
            });
            assert!(d.iter().all(|&v| v == 3.0));
        });
        with_scratch_f32(9, |buf| assert_eq!(buf.len(), 9));
    }

    #[test]
    fn parallel_rows_is_generic_over_the_element_type() {
        let n = 600;
        let d = 120; // above PAR_THRESHOLD → parallel path
        let mut out = vec![0.0f32; n * d];
        parallel_rows(&mut out, n, d, n * d, |block, start, end| {
            for (r, row) in block.chunks_mut(d).enumerate() {
                row.fill((start + r) as f32);
            }
            assert_eq!(block.len(), (end - start) * d);
        });
        for (i, row) in out.chunks(d).enumerate() {
            assert!(row.iter().all(|&v| v == i as f32), "f32 row {i} wrong");
        }
    }

    #[test]
    fn width_is_at_least_one() {
        assert!(pool().width() >= 1);
        assert!(configured_width() >= 1);
        assert_eq!(Pool::with_threads(1).width(), 1);
    }

    /// The clamp rule covers every (request, host) combination — including
    /// `avx512` requested on hosts that lack it, which cannot be produced
    /// end-to-end on an AVX-512 CI box.
    #[test]
    fn resolve_tier_clamps_requests_above_the_host_maximum() {
        use KernelTier::*;
        // No request → best available, never clamped.
        for max in [Scalar, Avx2, Avx512] {
            assert_eq!(resolve_tier(None, max), (max, false));
        }
        // Requests at or below the maximum are honored.
        assert_eq!(resolve_tier(Some(Scalar), Avx512), (Scalar, false));
        assert_eq!(resolve_tier(Some(Avx2), Avx512), (Avx2, false));
        assert_eq!(resolve_tier(Some(Avx512), Avx512), (Avx512, false));
        assert_eq!(resolve_tier(Some(Scalar), Scalar), (Scalar, false));
        // Requests above the maximum clamp (and report it).
        assert_eq!(resolve_tier(Some(Avx512), Avx2), (Avx2, true));
        assert_eq!(resolve_tier(Some(Avx512), Scalar), (Scalar, true));
        assert_eq!(resolve_tier(Some(Avx2), Scalar), (Scalar, true));
    }

    #[test]
    fn tier_names_roundtrip_through_parse() {
        use KernelTier::*;
        for t in [Scalar, Avx2, Avx512] {
            assert_eq!(t.name().parse::<KernelTier>(), Ok(t));
            assert_eq!(t.to_string(), t.name());
            assert_eq!(tier_from_u8(t as u8), t);
        }
        assert_eq!("AVX512".parse::<KernelTier>(), Ok(Avx512));
        assert!("sse2".parse::<KernelTier>().is_err());
        assert!("".parse::<KernelTier>().is_err());
    }

    #[test]
    fn tiers_are_ordered_by_capability() {
        assert!(KernelTier::Scalar < KernelTier::Avx2);
        assert!(KernelTier::Avx2 < KernelTier::Avx512);
    }

    #[test]
    fn available_tiers_is_ascending_and_bounded_by_max() {
        let tiers = available_tiers();
        assert_eq!(tiers.first(), Some(&KernelTier::Scalar));
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(tiers.last(), Some(&max_available_tier()));
    }

    /// `set_kernel_tier` round-trips through `kernel_tier` for every
    /// available tier; the active tier never exceeds the host maximum.
    /// (Process-global state: tests touching the tier restore it.)
    #[test]
    fn set_kernel_tier_roundtrips_over_available_tiers() {
        let initial = kernel_tier();
        assert!(initial <= max_available_tier());
        for &t in available_tiers() {
            set_kernel_tier(t);
            assert_eq!(kernel_tier(), t);
        }
        set_kernel_tier(initial);
    }
}
