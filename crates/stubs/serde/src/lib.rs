#![warn(missing_docs)]
//! Offline drop-in stub for `serde`: re-exports no-op `Serialize` /
//! `Deserialize` derives. The workspace's persistence paths are hand-rolled
//! byte codecs, so the derives only need to parse, not generate impls.

pub use serde_derive::{Deserialize, Serialize};
