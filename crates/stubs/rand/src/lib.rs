#![warn(missing_docs)]
//! Offline drop-in stub for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — high-quality, fast, and stable across platforms, which is
//! all the workspace needs (seeded reproducibility; no cryptographic
//! claims). Streams differ from upstream `rand`, so seeds produce different
//! (but still deterministic) draws than the real crate would.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generator (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Range types [`Rng::gen_range`] accepts (mirror of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is unmeasurable
                // for the span sizes this workspace draws.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                // i128 arithmetic: `start + draw` can overflow the signed
                // types when the span crosses zero (e.g. -100i8..100).
                ((self.start as i128) + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample_from_word(rng.next_u64());
                }
                let span = (hi as i128).wrapping_sub(lo as i128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as i128) + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Helper for full-width inclusive ranges.
trait SampleFromWord {
    fn sample_from_word(word: u64) -> Self;
}

macro_rules! impl_sample_from_word {
    ($($t:ty),*) => {$(
        impl SampleFromWord for $t {
            #[inline]
            fn sample_from_word(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}

impl_sample_from_word!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing random-value interface (blanket-implemented for every
/// [`RngCore`], like upstream `rand`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform for integers/bool).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12), but a stable,
    /// well-tested PRNG with the same construction API. All workspace code
    /// seeds explicitly, so only determinism matters.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&v| (0.0..1.0).contains(&v)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
        // Inclusive upper bound is actually reachable.
        let mut hit_top = false;
        for _ in 0..200 {
            if rng.gen_range(0u8..=3) == 3 {
                hit_top = true;
            }
        }
        assert!(hit_top);
    }

    #[test]
    fn int_range_covers_support_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1700..=2300).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn signed_ranges_crossing_zero_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(17);
        let (mut neg, mut pos) = (false, false);
        for _ in 0..2000 {
            let v = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&v));
            neg |= v < -50;
            pos |= v > 50;
            let w = rng.gen_range(-1_000_000_000i64..=1_000_000_000);
            assert!((-1_000_000_000..=1_000_000_000).contains(&w));
        }
        assert!(neg && pos, "both halves of the signed range must be reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
