#![warn(missing_docs)]
//! Offline drop-in stub for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `name in strategy` / `name: type` parameters,
//! range and `collection::vec` strategies, `ProptestConfig::with_cases`,
//! and `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-case seed, so failures reproduce; there is no
//! shrinking — the failing case's inputs are printed instead.

use rand::rngs::StdRng;

/// How a test case's inputs are produced (simplified `proptest::Strategy`).
pub trait Strategy {
    /// The value type this strategy yields.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// Types usable as bare `name: type` parameters (simplified `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen(rng)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen(rng)
    }
}

/// Strategy wrapper for `name: type` parameters.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the explicit form of a `name: type` parameter.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing `Vec`s with element strategy `S` and a length
    /// drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(strategy, len_range)` — vectors of random length and elements.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rand::Rng::gen_range(rng, self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration (simplified `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything the `proptest!` macro and its call sites need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs `cases` deterministic cases of a property (used by [`proptest!`]).
pub fn run_cases(cases: u32, base_seed: u64, mut case: impl FnMut(&mut StdRng, u64)) {
    use rand::SeedableRng;
    for i in 0..cases as u64 {
        // Distinct, reproducible stream per case.
        let seed = base_seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ 0xA5A5_5A5A;
        let mut rng = StdRng::seed_from_u64(seed);
        case(&mut rng, i);
    }
}

/// Deterministic per-property seed derived from the property name.
pub fn name_seed(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Property-test entry macro (simplified `proptest::proptest!`).
///
/// Supports an optional `#![proptest_config(expr)]` inner attribute and any
/// number of `#[test] fn name(param in strategy, param: Type, …) { … }`
/// items. Each property runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    config.cases,
                    $crate::name_seed(stringify!($name)),
                    |__proptest_rng, __proptest_case| {
                        let run = || {
                            $crate::proptest!(@bind __proptest_rng, ($($params)*) => $body);
                        };
                        if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                            eprintln!(
                                "proptest: property `{}` failed on case {}",
                                stringify!($name),
                                __proptest_case
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    },
                );
            }
        )*
    };
    (@bind $rng:ident, () => $body:block) => {
        { let _ = &mut *$rng; $body }
    };
    (@bind $rng:ident, ($arg:ident in $strat:expr $(, $($rest:tt)*)?) => $body:block) => {
        {
            let $arg = $crate::Strategy::sample(&($strat), &mut *$rng);
            $crate::proptest!(@bind $rng, ($($($rest)*)?) => $body)
        }
    };
    (@bind $rng:ident, ($arg:ident : $ty:ty $(, $($rest:tt)*)?) => $body:block) => {
        {
            let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut *$rng);
            $crate::proptest!(@bind $rng, ($($($rest)*)?) => $body)
        }
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..1.0, flag: bool) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            let _ = flag;
        }

        #[test]
        fn vec_strategy_respects_len(v in collection::vec(0usize..5, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases(8, 42, |rng, _| first.push(rand::Rng::gen::<u64>(rng)));
        let mut second = Vec::new();
        crate::run_cases(8, 42, |rng, _| second.push(rand::Rng::gen::<u64>(rng)));
        assert_eq!(first, second);
    }
}
