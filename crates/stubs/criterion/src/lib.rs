#![warn(missing_docs)]
//! Offline drop-in stub for the `criterion` crate.
//!
//! Implements the benchmark-harness subset the workspace's benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`, and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! plain wall-clock mean over `sample_size` batches with a short warm-up,
//! printed as `ns/iter` — enough to record relative kernel speeds in the
//! perf trajectory without the full statistical machinery.

use std::time::Instant;

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`, recording the mean over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1) as u64;
        // Batch so each sample runs ≥ ~1ms but total time stays bounded.
        let iters_per_sample = (1_000_000 / once).clamp(1, 10_000) as usize;
        let mut total_ns = 0u128;
        let mut total_iters = 0u128;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total_ns += t.elapsed().as_nanos();
            total_iters += iters_per_sample as u128;
        }
        self.mean_ns = total_ns as f64 / total_iters as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run(&mut self, id: &str, run: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { samples: self.samples, mean_ns: 0.0 };
        run(&mut b);
        println!("{}/{id}: {:.0} ns/iter", self.name, b.mean_ns);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Benchmarks `f(input)` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints as it
    /// goes, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 20, _parent: self }
    }

    /// Benchmarks a stand-alone function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &p| {
            b.iter(|| black_box(p * 2));
        });
        group.finish();
        assert!(ran);
    }
}
