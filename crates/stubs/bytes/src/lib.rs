#![warn(missing_docs)]
//! Offline drop-in stub for the `bytes` crate (1.x-compatible API subset).
//!
//! Provides [`BytesMut`] (append-only encode buffer), [`Bytes`] (cheap
//! read cursor over an immutable buffer) and the [`Buf`]/[`BufMut`] traits,
//! covering exactly the little-endian get/put surface the workspace's
//! hand-rolled serializers use. Single-threaded, no ref-counted slicing —
//! none of that is needed here.

use std::sync::Arc;

/// Read-side cursor trait (mirror of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `dst.len()` bytes, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

/// Write-side trait (mirror of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer for encoding; freeze into [`Bytes`] when done.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::from(self.data.into_boxed_slice()), pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Copies `src` into a fresh buffer with the cursor at the start.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self { data: Arc::from(src), pos: 0 }
    }

    /// Total length of the underlying buffer (cursor-independent).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The unread remainder as a slice.
    pub fn as_ref_remaining(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "Bytes: read past end of buffer");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "&[u8]: read past end of buffer");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f64_le(-2.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), -2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut b = Bytes::copy_from_slice(&[1, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn remaining_tracks_cursor_but_len_does_not() {
        let mut b = Bytes::copy_from_slice(&[0; 10]);
        assert_eq!((b.len(), b.remaining()), (10, 10));
        let _ = b.get_u32_le();
        assert_eq!((b.len(), b.remaining()), (10, 6));
    }
}
