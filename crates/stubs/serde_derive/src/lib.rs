//! Offline no-op stand-in for `serde_derive`: the workspace derives
//! `Serialize`/`Deserialize` on a few substrate types but never serializes
//! them through serde (the model/dataset codecs are hand-rolled in
//! `gcon-core::serialize` / `gcon-datasets::io`), so empty derive
//! expansions keep the annotations compiling without the real dependency.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
