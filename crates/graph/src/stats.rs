//! Structural graph statistics: components, degree distribution, clustering.
//!
//! Used by the dataset reporting (alongside the Table II row) and by the
//! generator tests to confirm the synthetic stand-ins have citation-like
//! structure (heavy-tailed degrees, a dominant connected component,
//! non-trivial clustering).

use crate::{traversal, Graph};

/// Connected components; returns `(component id per node, count)`.
/// Thin adapter over [`traversal::connected_components`] (the canonical
/// implementation) with `usize` component ids.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let (labels, count) = traversal::connected_components(graph);
    (labels.into_iter().map(|l| l as usize).collect(), count)
}

/// Size of the largest connected component.
pub fn largest_component_size(graph: &Graph) -> usize {
    let (comp, count) = connected_components(graph);
    if count == 0 {
        return 0;
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Degree histogram: `hist[k]` = number of nodes with degree `k`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_degree() + 1];
    for u in 0..graph.num_nodes() as u32 {
        hist[graph.degree(u)] += 1;
    }
    hist
}

/// Global clustering coefficient: `3 · #triangles / #wedges`
/// (0 when the graph has no wedges).
pub fn global_clustering_coefficient(graph: &Graph) -> f64 {
    let mut triangles = 0usize; // counted 3 times (once per vertex)
    let mut wedges = 0usize;
    for u in 0..graph.num_nodes() as u32 {
        let nbrs = graph.neighbors(u);
        let k = nbrs.len();
        wedges += k * k.saturating_sub(1) / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if graph.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

/// BFS shortest-path distances from `source` (`usize::MAX` = unreachable).
/// Thin adapter over [`traversal::bfs_distances`] (the canonical
/// implementation) with `usize` distances.
pub fn bfs_distances(graph: &Graph, source: u32) -> Vec<usize> {
    traversal::bfs_distances(graph, source)
        .into_iter()
        .map(|d| if d == u32::MAX { usize::MAX } else { d as usize })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_disjoint_paths() {
        let mut g = generators::path(4); // 0-1-2-3
                                         // add an isolated pair 4-5 requires a larger graph:
        let mut g2 = Graph::empty(6);
        for (u, v) in g.edges() {
            g2.add_edge(u, v);
        }
        g2.add_edge(4, 5);
        g = g2;
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[3]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[4]);
        assert_eq!(largest_component_size(&g), 4);
    }

    #[test]
    fn degree_histogram_star() {
        let g = generators::star(5);
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 4); // leaves
        assert_eq!(hist[4], 1); // hub
    }

    #[test]
    fn clustering_triangle_vs_path() {
        let triangle = generators::complete(3);
        assert!((global_clustering_coefficient(&triangle) - 1.0).abs() < 1e-12);
        let path = generators::path(5);
        assert_eq!(global_clustering_coefficient(&path), 0.0);
    }

    #[test]
    fn clustering_of_k4() {
        // K4: every wedge closes.
        let g = generators::complete(4);
        assert!((global_clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_unreachable_nodes() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn sbm_stand_ins_have_dominant_component() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = generators::sbm_homophily(
            &generators::SbmConfig {
                n: 800,
                num_edges: 3200,
                num_classes: 4,
                homophily: 0.8,
                degree_exponent: 2.3,
            },
            &mut rng,
        );
        // Citation-like: one giant component holding most nodes.
        assert!(largest_component_size(&g) > 700);
    }
}
