//! Homophily ratio (Definition 7 of the paper).

use crate::Graph;

/// Node-averaged homophily ratio:
///
/// ```text
/// h = (1/|V|) Σ_v (1/|N_v|) Σ_{u ∈ N_v} 1(Y_u = Y_v)
/// ```
///
/// Nodes with no neighbors contribute 0 (their inner average is empty).
/// Matches Definition 7; Table II reports this statistic per dataset
/// (Cora-ML 0.81, CiteSeer 0.71, PubMed 0.79, Actor 0.22).
pub fn homophily_ratio(graph: &Graph, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), graph.num_nodes(), "homophily_ratio: label count mismatch");
    let n = graph.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for v in 0..n as u32 {
        let nbrs = graph.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        let same = nbrs.iter().filter(|&&u| labels[u as usize] == labels[v as usize]).count();
        total += same as f64 / nbrs.len() as f64;
    }
    total / n as f64
}

/// Edge-level homophily: fraction of edges whose endpoints share a label.
/// Used by the generator calibration tests (it tracks the wiring probability
/// more directly than the node-averaged Definition 7).
pub fn edge_homophily(graph: &Graph, labels: &[usize]) -> f64 {
    let edges = graph.edges();
    if edges.is_empty() {
        return 0.0;
    }
    let same = edges.iter().filter(|&&(u, v)| labels[u as usize] == labels[v as usize]).count();
    same as f64 / edges.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_homophilous_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let labels = vec![0, 0, 0, 0];
        assert!((homophily_ratio(&g, &labels) - 1.0).abs() < 1e-12);
        assert!((edge_homophily(&g, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_heterophilous_graph() {
        // bipartite 0-1 edges between classes
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]);
        let labels = vec![0, 0, 1, 1];
        assert_eq!(homophily_ratio(&g, &labels), 0.0);
        assert_eq!(edge_homophily(&g, &labels), 0.0);
    }

    #[test]
    fn mixed_graph_manual_value() {
        // triangle 0-1-2 with labels [0,0,1]:
        // node0: nbrs {1,2} → 1/2; node1: → 1/2; node2: nbrs {0,1} → 0
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let labels = vec![0, 0, 1];
        assert!((homophily_ratio(&g, &labels) - (0.5 + 0.5 + 0.0) / 3.0).abs() < 1e-12);
        assert!((edge_homophily(&g, &labels) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_nodes_count_in_denominator() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let labels = vec![0, 0, 1];
        assert!((homophily_ratio(&g, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }
}
