//! Synthetic graph generators.
//!
//! The paper evaluates on Cora-ML / CiteSeer / PubMed / Actor, which are not
//! redistributable here; `gcon-datasets` builds stand-ins from the
//! [`sbm_homophily`] generator in this module (a degree-corrected stochastic
//! block model with an explicit homophily dial), matching each dataset's
//! node count, edge count, class count, and homophily ratio from Table II.
//! See DESIGN.md §3 for the substitution rationale.

use crate::Graph;
use rand::Rng;

/// Samples an index proportionally to a fixed weight vector via prefix sums.
pub struct WeightedSampler {
    prefix: Vec<f64>,
    items: Vec<u32>,
}

impl WeightedSampler {
    /// Builds a sampler over `items` with the given positive weights.
    pub fn new(items: Vec<u32>, weights: &[f64]) -> Self {
        assert_eq!(items.len(), weights.len());
        assert!(!items.is_empty(), "WeightedSampler: empty support");
        let mut prefix = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w > 0.0, "WeightedSampler: weights must be positive");
            acc += w;
            prefix.push(acc);
        }
        Self { prefix, items }
    }

    /// Draws one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let total = *self.prefix.last().unwrap();
        let x = rng.gen::<f64>() * total;
        let idx = self.prefix.partition_point(|&p| p < x).min(self.items.len() - 1);
        self.items[idx]
    }
}

/// G(n, m): exactly `m` distinct uniform random edges (or fewer if the graph
/// saturates).
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let mut g = Graph::empty(n);
    let max_edges = n * n.saturating_sub(1) / 2;
    let target = m.min(max_edges);
    let mut attempts = 0usize;
    let budget = target.saturating_mul(200) + 1000;
    while g.num_edges() < target && attempts < budget {
        attempts += 1;
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        g.add_edge(u, v);
    }
    g
}

/// Path graph 0-1-2-…-(n-1).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> =
        (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1)).collect();
    Graph::from_edges(n, &edges)
}

/// Cycle graph.
pub fn cycle(n: usize) -> Graph {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge(n as u32 - 1, 0);
    }
    g
}

/// Star graph with center 0.
pub fn star(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n).map(|i| (0, i as u32)).collect();
    Graph::from_edges(n, &edges)
}

/// Complete graph K_n.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            g.add_edge(u, v);
        }
    }
    g
}

/// Parameters for the degree-corrected SBM with a homophily dial.
#[derive(Clone, Debug)]
pub struct SbmConfig {
    /// Number of nodes.
    pub n: usize,
    /// Target number of undirected edges.
    pub num_edges: usize,
    /// Number of label classes.
    pub num_classes: usize,
    /// Probability that a sampled edge connects two same-class endpoints.
    /// This directly dials the homophily statistics of Definition 7.
    pub homophily: f64,
    /// Pareto shape for node degree propensities; larger = more homogeneous
    /// degrees. Citation-style graphs are heavy-tailed (≈ 2.0–3.0).
    pub degree_exponent: f64,
}

/// Degree-corrected stochastic block model. Returns the graph and node labels.
///
/// Labels are assigned round-robin (balanced classes); each node gets a
/// Pareto degree propensity; each edge picks its first endpoint by propensity,
/// chooses same-class vs. cross-class with probability `homophily`, then picks
/// the partner by propensity within the chosen side.
pub fn sbm_homophily<R: Rng + ?Sized>(cfg: &SbmConfig, rng: &mut R) -> (Graph, Vec<usize>) {
    assert!(cfg.num_classes >= 2, "sbm_homophily: need at least 2 classes");
    assert!((0.0..=1.0).contains(&cfg.homophily), "sbm_homophily: homophily in [0,1]");
    assert!(cfg.n >= 2 * cfg.num_classes, "sbm_homophily: too few nodes");
    let n = cfg.n;
    // Balanced labels, then shuffled so class blocks are not index-contiguous.
    let mut labels: Vec<usize> = (0..n).map(|i| i % cfg.num_classes).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        labels.swap(i, j);
    }
    // Pareto(1, a) degree propensities, capped to keep max degree sane.
    let a = cfg.degree_exponent.max(1.1);
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = 1.0 - rng.gen::<f64>();
            u.powf(-1.0 / a).min(50.0)
        })
        .collect();

    let global = WeightedSampler::new((0..n as u32).collect(), &weights);
    let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i as u32);
    }
    let class_samplers: Vec<WeightedSampler> = by_class
        .iter()
        .map(|nodes| {
            let w: Vec<f64> = nodes.iter().map(|&i| weights[i as usize]).collect();
            WeightedSampler::new(nodes.clone(), &w)
        })
        .collect();

    let mut g = Graph::empty(n);
    let mut attempts = 0usize;
    let budget = cfg.num_edges.saturating_mul(100) + 10_000;
    while g.num_edges() < cfg.num_edges && attempts < budget {
        attempts += 1;
        let u = global.sample(rng);
        let lu = labels[u as usize];
        let v = if rng.gen::<f64>() < cfg.homophily {
            class_samplers[lu].sample(rng)
        } else {
            // Pick a different class uniformly, then a member by propensity.
            let mut lc = rng.gen_range(0..cfg.num_classes - 1);
            if lc >= lu {
                lc += 1;
            }
            class_samplers[lc].sample(rng)
        };
        g.add_edge(u, v);
    }
    (g, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homophily::{edge_homophily, homophily_ratio};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_hits_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(100, 300, &mut rng);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn gnm_saturates_gracefully() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_gnm(4, 100, &mut rng);
        assert_eq!(g.num_edges(), 6); // K4
    }

    #[test]
    fn small_builders() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(star(5).degree(0), 4);
    }

    #[test]
    fn sbm_homophily_dial_high() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SbmConfig {
            n: 1000,
            num_edges: 4000,
            num_classes: 5,
            homophily: 0.8,
            degree_exponent: 2.5,
        };
        let (g, labels) = sbm_homophily(&cfg, &mut rng);
        assert_eq!(g.num_edges(), 4000);
        let eh = edge_homophily(&g, &labels);
        assert!((eh - 0.8).abs() < 0.06, "edge homophily {eh} far from 0.8");
        let h = homophily_ratio(&g, &labels);
        assert!(h > 0.6, "node homophily {h} too low");
    }

    #[test]
    fn sbm_homophily_dial_low() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SbmConfig {
            n: 1000,
            num_edges: 4000,
            num_classes: 5,
            homophily: 0.2,
            degree_exponent: 2.5,
        };
        let (g, labels) = sbm_homophily(&cfg, &mut rng);
        let eh = edge_homophily(&g, &labels);
        assert!((eh - 0.2).abs() < 0.06, "edge homophily {eh} far from 0.2");
    }

    #[test]
    fn sbm_classes_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SbmConfig {
            n: 600,
            num_edges: 1500,
            num_classes: 3,
            homophily: 0.5,
            degree_exponent: 2.5,
        };
        let (_, labels) = sbm_homophily(&cfg, &mut rng);
        for c in 0..3 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 200);
        }
    }

    #[test]
    fn sbm_degrees_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = SbmConfig {
            n: 2000,
            num_edges: 8000,
            num_classes: 4,
            homophily: 0.7,
            degree_exponent: 2.0,
        };
        let (g, _) = sbm_homophily(&cfg, &mut rng);
        // Heavy tail: max degree well above the average.
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = WeightedSampler::new(vec![10, 20], &[1.0, 9.0]);
        let mut count20 = 0;
        for _ in 0..10_000 {
            if s.sample(&mut rng) == 20 {
                count20 += 1;
            }
        }
        let frac = count20 as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }
}
