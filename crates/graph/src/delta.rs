//! O(Δ) mutation of a graph and its row-stochastic normalization — the
//! dynamic-graph substrate.
//!
//! The batch pipeline builds `Ã = D⁻¹(A+I)` once ([`normalize::row_stochastic`])
//! and every downstream layer treats it as immutable. Production graphs
//! mutate; rebuilding `Ã` from scratch for a handful of edges costs O(n + m)
//! re-normalization and a full per-row sort. [`CsrDelta`] batches edge
//! inserts/removes and node onboarding, applies them to the [`Graph`]
//! in place, and patches only the **touched rows** of `Ã`:
//!
//! - An edge `{u, v}` change affects exactly rows `u` and `v` of the
//!   row-stochastic normalization (each row depends only on that node's
//!   degree and neighbor list), so the re-derivation work is O(Δ) — the sum
//!   of the touched rows' degrees — independent of graph size.
//! - The structural splice ([`Csr::with_rows_replaced`]) bulk-copies every
//!   untouched row span verbatim and never sorts: replacement rows are
//!   emitted pre-sorted straight from the sorted adjacency lists.
//!
//! The patched matrix is **bitwise identical** to a from-scratch
//! [`normalize::row_stochastic`] on the mutated graph (same clip `p`):
//! untouched rows are byte copies, and touched rows replicate the rebuild's
//! exact arithmetic — including accumulating the off-diagonal sum by `k`
//! repeated additions, not a single multiply — so the downstream
//! propagation refresh starts from the very matrix a cold rebuild would
//! see. This equality is pinned per-application here and for random delta
//! sequences by the `dynamic_properties` proptest suite.

use crate::csr::CsrScalar;
use crate::{normalize, Csr, Graph};
use std::collections::HashMap;
use std::ops::Range;

/// A batch of graph mutations: edge inserts, edge removes, and node
/// onboarding, applied atomically by [`CsrDelta::apply`].
///
/// Application order is fixed and documented: **onboard nodes, then remove
/// edges, then insert edges** — so inserts may reference nodes onboarded by
/// the same delta, and a remove+insert of the same edge within one delta
/// nets to the edge being present. Edge operations that do not change the
/// graph (inserting an existing edge or a self-loop, removing an absent
/// edge) are ignored and do **not** mark their endpoints touched, mirroring
/// the `bool` returns of [`Graph::add_edge`] / [`Graph::remove_edge`].
#[derive(Clone, Debug, Default)]
pub struct CsrDelta {
    edge_inserts: Vec<(u32, u32)>,
    edge_removes: Vec<(u32, u32)>,
    new_nodes: usize,
}

/// Outcome of [`CsrDelta::apply`]: the patched normalization plus the
/// bookkeeping the incremental-refresh layers key on.
#[derive(Clone, Debug)]
pub struct DeltaResult<S: CsrScalar = f64> {
    /// The updated row-stochastic normalization of the mutated graph —
    /// bitwise identical to rebuilding it from scratch.
    pub a_tilde: Csr<S>,
    /// Row indices whose `Ã` rows changed (sorted, deduplicated; includes
    /// every onboarded node). Exactly the endpoints of effective edge
    /// operations plus the onboarded range.
    pub touched: Vec<u32>,
    /// Ids of the nodes onboarded by this delta (empty range when none).
    pub onboarded: Range<u32>,
}

impl CsrDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues insertion of the undirected edge `{u, v}`.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> &mut Self {
        self.edge_inserts.push((u, v));
        self
    }

    /// Queues removal of the undirected edge `{u, v}`.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> &mut Self {
        self.edge_removes.push((u, v));
        self
    }

    /// Queues onboarding of `count` new nodes. Their ids start at the
    /// graph's current node count and may be referenced by edges queued on
    /// the same delta.
    pub fn add_nodes(&mut self, count: usize) -> &mut Self {
        self.new_nodes += count;
        self
    }

    /// True when no mutation is queued.
    pub fn is_empty(&self) -> bool {
        self.edge_inserts.is_empty() && self.edge_removes.is_empty() && self.new_nodes == 0
    }

    /// Number of queued edge operations (inserts + removes).
    pub fn num_edge_ops(&self) -> usize {
        self.edge_inserts.len() + self.edge_removes.len()
    }

    /// Number of queued node onboardings.
    pub fn num_new_nodes(&self) -> usize {
        self.new_nodes
    }

    /// Folds `other` into `self` so that applying the merged delta once is
    /// equivalent to applying `self` then `other` sequentially — for **any**
    /// starting graph.
    ///
    /// Edge operations are state-setters (insert ≡ ensure-present, remove ≡
    /// ensure-absent), and the combined stream applies in the order
    /// `self.removes, self.inserts, other.removes, other.inserts` (removes
    /// precede inserts within one delta — see [`CsrDelta::apply`]). The
    /// **last** operation per undirected edge therefore decides its final
    /// state; earlier ones are dropped. An insert-then-remove pair nets to a
    /// single remove (a no-op if the edge was absent to begin with), never
    /// to a blind cancellation — cancelling both ops would be wrong when the
    /// edge pre-existed. Use [`CsrDelta::prune`] afterwards to discard netted
    /// operations that are provably ineffective against a concrete graph.
    ///
    /// Onboard counts concatenate: node ids are absolute and assigned
    /// sequentially, so edges in `other` that reference nodes onboarded by
    /// `self` stay valid in the merged delta.
    pub fn merge(&mut self, other: &CsrDelta) -> &mut Self {
        let stream = self
            .edge_removes
            .iter()
            .map(|&e| (e, false))
            .chain(self.edge_inserts.iter().map(|&e| (e, true)))
            .chain(other.edge_removes.iter().map(|&e| (e, false)))
            .chain(other.edge_inserts.iter().map(|&e| (e, true)));
        // Net to last-op-wins per undirected edge, preserving first-seen
        // order so the merged delta is deterministic for a given stream.
        let mut last: HashMap<(u32, u32), bool> = HashMap::new();
        let mut order: Vec<(u32, u32)> = Vec::new();
        for ((u, v), is_insert) in stream {
            let key = (u.min(v), u.max(v));
            if last.insert(key, is_insert).is_none() {
                order.push(key);
            }
        }
        self.edge_inserts.clear();
        self.edge_removes.clear();
        for key in order {
            if last[&key] {
                self.edge_inserts.push(key);
            } else {
                self.edge_removes.push(key);
            }
        }
        self.new_nodes += other.new_nodes;
        self
    }

    /// Drops queued edge operations that provably cannot change `graph`:
    /// inserts of already-present edges or self-loops, and removes of absent
    /// edges. Operations referencing nodes this delta onboards (id ≥
    /// `graph.num_nodes()`) are kept — their effect cannot be judged against
    /// the pre-delta graph.
    ///
    /// After [`CsrDelta::merge`] nets a window's operations, pruning reduces
    /// a fully-cancelled window (e.g. insert then remove of an edge that was
    /// absent) to an empty delta, letting a scheduler skip the refresh
    /// entirely via [`CsrDelta::is_empty`].
    pub fn prune(&mut self, graph: &Graph) -> &mut Self {
        let n = graph.num_nodes() as u32;
        self.edge_inserts.retain(|&(u, v)| {
            if u >= n || v >= n {
                true
            } else {
                u != v && !graph.has_edge(u, v)
            }
        });
        self.edge_removes.retain(|&(u, v)| u >= n || v >= n || graph.has_edge(u, v));
        self
    }

    /// Applies the delta: mutates `graph` in place and patches `a_tilde`
    /// (its row-stochastic normalization with clip `p`) by re-deriving only
    /// the touched rows. See the module docs for the cost model and the
    /// bitwise-equality contract.
    ///
    /// # Panics
    /// Panics if `a_tilde` is not `n × n` for the current `graph`, if `p`
    /// is outside `(0, 0.5]`, or if a queued edge references a node id that
    /// is out of range after onboarding.
    pub fn apply<S: CsrScalar>(
        &self,
        graph: &mut Graph,
        a_tilde: &Csr<S>,
        p: f64,
    ) -> DeltaResult<S> {
        let n_old = graph.num_nodes();
        assert_eq!(
            (a_tilde.rows(), a_tilde.cols()),
            (n_old, n_old),
            "CsrDelta::apply: a_tilde shape does not match the graph"
        );
        assert!(p > 0.0 && p <= 0.5, "CsrDelta::apply: clip p must lie in (0, 0.5], got {p}");

        // 1. Onboard nodes, 2. remove edges, 3. insert edges.
        let first_new = graph.add_nodes(self.new_nodes);
        let onboarded = first_new..first_new + self.new_nodes as u32;
        let n_new = graph.num_nodes();
        let mut touched: Vec<u32> = onboarded.clone().collect();
        for &(u, v) in &self.edge_removes {
            assert!(
                (u as usize) < n_new && (v as usize) < n_new,
                "CsrDelta::apply: remove_edge({u}, {v}) out of range"
            );
            if graph.remove_edge(u, v) {
                touched.push(u);
                touched.push(v);
            }
        }
        for &(u, v) in &self.edge_inserts {
            if graph.add_edge(u, v) {
                touched.push(u);
                touched.push(v);
            }
        }
        touched.sort_unstable();
        touched.dedup();

        let replaced: Vec<(usize, Vec<(u32, S)>)> =
            touched.iter().map(|&u| (u as usize, normalized_row(graph, u, p))).collect();
        let a_tilde = a_tilde.with_rows_replaced(n_new, n_new, &replaced);
        DeltaResult { a_tilde, touched, onboarded }
    }
}

/// Row `u` of the row-stochastic normalization with clip `p`, emitted
/// column-sorted, replicating [`normalize::row_stochastic`]'s arithmetic
/// exactly (see the module docs for why the off-diagonal sum is accumulated
/// by repeated addition).
fn normalized_row<S: CsrScalar>(graph: &Graph, u: u32, p: f64) -> Vec<(u32, S)> {
    let k = graph.degree(u);
    let off = (1.0 / (k as f64 + 1.0)).min(p);
    // `row_stochastic` accumulates `off_sum += off` once per neighbor; a
    // single multiply `k as f64 * off` rounds differently for some k, which
    // would break the bitwise-equality contract on the self-loop weight.
    let mut off_sum = 0.0;
    for _ in 0..k {
        off_sum += off;
    }
    let nbrs = graph.neighbors(u);
    // The self-loop lands at its sorted position among the neighbors —
    // exactly where `from_row_entries`'s sort would place it.
    let pos = nbrs.partition_point(|&v| v < u);
    let mut entries = Vec::with_capacity(k + 1);
    for &v in &nbrs[..pos] {
        entries.push((v, S::from_f64(off)));
    }
    entries.push((u, S::from_f64(1.0 - off_sum)));
    for &v in &nbrs[pos..] {
        entries.push((v, S::from_f64(off)));
    }
    entries
}

/// Convenience check used by tests and debug assertions: the patched matrix
/// equals a from-scratch rebuild of the mutated graph, bitwise.
pub fn matches_rebuild(patched: &Csr, graph: &Graph, p: f64) -> bool {
    *patched == normalize::row_stochastic(graph, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;
    use crate::normalize::{row_stochastic, row_stochastic_default};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, m: usize, seed: u64) -> (Graph, Csr) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_gnm(n, m, &mut rng);
        let a = row_stochastic_default(&g);
        (g, a)
    }

    #[test]
    fn single_insert_is_bitwise_equal_to_rebuild() {
        let (mut g, a) = setup(30, 60, 1);
        let mut d = CsrDelta::new();
        // Find an absent edge deterministically.
        let (u, v) = (0..30u32)
            .flat_map(|u| (u + 1..30).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v))
            .unwrap();
        d.insert_edge(u, v);
        let res = d.apply(&mut g, &a, 0.5);
        assert_eq!(res.touched, vec![u, v]);
        assert!(res.onboarded.is_empty());
        assert!(matches_rebuild(&res.a_tilde, &g, 0.5));
    }

    #[test]
    fn single_remove_is_bitwise_equal_to_rebuild() {
        let (mut g, a) = setup(30, 60, 2);
        let (u, v) = g.edges()[7];
        let mut d = CsrDelta::new();
        d.remove_edge(v, u); // either endpoint order
        let res = d.apply(&mut g, &a, 0.5);
        assert_eq!(res.touched, vec![u.min(v), u.max(v)]);
        assert!(matches_rebuild(&res.a_tilde, &g, 0.5));
    }

    #[test]
    fn onboarding_then_connecting_new_nodes() {
        let (mut g, a) = setup(20, 40, 3);
        let mut d = CsrDelta::new();
        d.add_nodes(2).insert_edge(20, 5).insert_edge(21, 20);
        let res = d.apply(&mut g, &a, 0.5);
        assert_eq!(g.num_nodes(), 22);
        assert_eq!(res.onboarded, 20..22);
        assert_eq!(res.touched, vec![5, 20, 21]);
        assert_eq!((res.a_tilde.rows(), res.a_tilde.cols()), (22, 22));
        assert!(matches_rebuild(&res.a_tilde, &g, 0.5));
    }

    #[test]
    fn onboarded_isolated_node_is_a_pure_self_loop() {
        let (mut g, a) = setup(10, 15, 4);
        let mut d = CsrDelta::new();
        d.add_nodes(1);
        let res = d.apply(&mut g, &a, 0.5);
        assert_eq!(res.touched, vec![10]);
        let (cols, vals) = res.a_tilde.row(10);
        assert_eq!(cols, &[10]);
        assert_eq!(vals, &[1.0]);
        assert!(matches_rebuild(&res.a_tilde, &g, 0.5));
    }

    #[test]
    fn noop_operations_touch_nothing_and_preserve_bits() {
        let (mut g, a) = setup(25, 50, 5);
        let (u, v) = g.edges()[0];
        let absent = (0..25u32)
            .flat_map(|x| (x + 1..25).map(move |y| (x, y)))
            .find(|&(x, y)| !g.has_edge(x, y))
            .unwrap();
        let mut d = CsrDelta::new();
        d.insert_edge(u, v); // already present
        d.remove_edge(absent.0, absent.1); // absent
        d.insert_edge(3, 3); // self-loop
        let g_before = g.clone();
        let res = d.apply(&mut g, &a, 0.5);
        assert!(res.touched.is_empty());
        assert_eq!(g, g_before);
        assert_eq!(res.a_tilde, a); // byte-copied untouched rows
    }

    #[test]
    fn remove_then_insert_same_edge_nets_to_present() {
        let (mut g, a) = setup(20, 40, 6);
        let (u, v) = g.edges()[3];
        let mut d = CsrDelta::new();
        d.remove_edge(u, v).insert_edge(u, v);
        let res = d.apply(&mut g, &a, 0.5);
        assert!(g.has_edge(u, v));
        // Both operations were effective, so the endpoints report touched —
        // and the re-derived rows still match the (identical) rebuild.
        assert_eq!(res.touched, vec![u.min(v), u.max(v)]);
        assert_eq!(res.a_tilde, a);
    }

    #[test]
    fn clipped_normalization_is_preserved() {
        let (mut g, _) = setup(30, 90, 7);
        let p = 0.2;
        let a = row_stochastic(&g, p);
        let mut d = CsrDelta::new();
        let (u, v) = g.edges()[11];
        d.remove_edge(u, v).insert_edge(u, (v + 1) % 30).add_nodes(1).insert_edge(30, u);
        let res = d.apply(&mut g, &a, p);
        assert!(matches_rebuild(&res.a_tilde, &g, p));
    }

    #[test]
    fn random_delta_sequence_stays_bitwise_equal() {
        let mut rng = StdRng::seed_from_u64(99);
        let (mut g, mut a) = setup(40, 100, 8);
        for _ in 0..20 {
            let mut d = CsrDelta::new();
            for _ in 0..rng.gen_range(1..5) {
                let n = g.num_nodes() as u32;
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if rng.gen_bool(0.5) {
                    d.insert_edge(u, v);
                } else {
                    d.remove_edge(u, v);
                }
            }
            if rng.gen_bool(0.2) {
                d.add_nodes(1);
            }
            let res = d.apply(&mut g, &a, 0.5);
            assert!(matches_rebuild(&res.a_tilde, &g, 0.5));
            a = res.a_tilde;
        }
    }

    #[test]
    fn f32_patch_matches_converted_rebuild() {
        let (mut g, a64) = setup(25, 60, 9);
        let a32: Csr<f32> = a64.convert();
        let mut d = CsrDelta::new();
        let (u, v) = g.edges()[5];
        d.remove_edge(u, v).add_nodes(1).insert_edge(25, u);
        let mut g32 = g.clone();
        let res32 = d.apply(&mut g32, &a32, 0.5);
        let res64 = d.apply(&mut g, &a64, 0.5);
        assert_eq!(g, g32);
        // Patching the converted matrix == converting the patched matrix:
        // values flow through the same f64 arithmetic before quantization.
        assert_eq!(res32.a_tilde, res64.a_tilde.convert());
        assert_eq!(res32.touched, res64.touched);
    }

    #[test]
    fn merge_matches_sequential_application() {
        let (mut g_seq, a) = setup(30, 70, 20);
        let mut g_merged = g_seq.clone();
        let present = g_seq.edges()[4];
        let absent = (0..30u32)
            .flat_map(|x| (x + 1..30).map(move |y| (x, y)))
            .find(|&(x, y)| !g_seq.has_edge(x, y))
            .unwrap();
        let mut d1 = CsrDelta::new();
        d1.insert_edge(absent.0, absent.1).remove_edge(present.0, present.1).add_nodes(1);
        let mut d2 = CsrDelta::new();
        // References the node d1 onboarded, re-inserts the edge d1 removed,
        // and removes the edge d1 inserted (nets to a remove of `absent`).
        d2.insert_edge(30, 2)
            .insert_edge(present.1, present.0)
            .remove_edge(absent.0, absent.1)
            .add_nodes(1);

        let r1 = d1.apply(&mut g_seq, &a, 0.5);
        let r2 = d2.apply(&mut g_seq, &r1.a_tilde, 0.5);

        let mut merged = d1.clone();
        merged.merge(&d2);
        assert_eq!(merged.num_new_nodes(), 2);
        let rm = merged.apply(&mut g_merged, &a, 0.5);
        assert_eq!(g_merged, g_seq);
        assert_eq!(rm.a_tilde, r2.a_tilde);
        assert_eq!(rm.onboarded, 30..32);
    }

    #[test]
    fn merged_insert_then_remove_prunes_to_empty() {
        let (g, _) = setup(20, 40, 21);
        let absent = (0..20u32)
            .flat_map(|x| (x + 1..20).map(move |y| (x, y)))
            .find(|&(x, y)| !g.has_edge(x, y))
            .unwrap();
        let mut d1 = CsrDelta::new();
        d1.insert_edge(absent.0, absent.1);
        let mut d2 = CsrDelta::new();
        d2.remove_edge(absent.1, absent.0); // opposite endpoint order
        d1.merge(&d2);
        // Netting keeps the final remove (sound for any start state)...
        assert_eq!(d1.num_edge_ops(), 1);
        // ...and pruning against the concrete graph discards it: the edge
        // was absent, so the whole window is a no-op.
        d1.prune(&g);
        assert!(d1.is_empty());
    }

    #[test]
    fn merged_remove_then_insert_of_present_edge_prunes_to_empty() {
        let (g, _) = setup(20, 40, 22);
        let (u, v) = g.edges()[2];
        let mut d1 = CsrDelta::new();
        d1.remove_edge(u, v);
        let mut d2 = CsrDelta::new();
        d2.insert_edge(u, v);
        d1.merge(&d2);
        assert_eq!(d1.num_edge_ops(), 1); // nets to the insert
        d1.prune(&g);
        assert!(d1.is_empty()); // ...which is a no-op: edge already present
    }

    #[test]
    fn prune_keeps_operations_on_onboarded_nodes() {
        let (g, _) = setup(15, 30, 23);
        let mut d = CsrDelta::new();
        d.add_nodes(1).insert_edge(15, 3).insert_edge(3, 3);
        d.prune(&g);
        // The self-loop dies, the onboard edge survives (node 15 does not
        // exist yet, so it cannot be judged against the pre-delta graph).
        assert_eq!(d.num_edge_ops(), 1);
        assert_eq!(d.num_new_nodes(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "shape does not match")]
    fn mismatched_a_tilde_shape_panics() {
        let (mut g, _) = setup(10, 15, 10);
        let wrong: Csr = Csr::eye(9);
        CsrDelta::new().insert_edge(0, 1).apply(&mut g, &wrong, 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let (mut g, a) = setup(10, 15, 11);
        CsrDelta::new().remove_edge(0, 99).apply(&mut g, &a, 0.5);
    }
}
