//! Breadth-first traversal utilities: hop distances, k-hop neighborhoods,
//! and connected components.
//!
//! These back two pieces of the reproduction:
//!
//! - the **sensitivity analysis**: the paper's Challenge 1 argues that an
//!   edge affects the aggregations of all `(m−1)`-hop neighbors of its
//!   endpoints — the empirical Lemma 2 tests use [`k_hop_neighborhood`] to
//!   localize where `Z` and `Z'` may differ;
//! - the **edge-inference attacks**: LinkTeller-style influence analysis
//!   scores candidate node pairs, and hop distance is the natural stratifier
//!   when reporting attack AUC by distance.

use crate::Graph;

/// Hop distance from `source` to every node (`u32::MAX` for unreachable).
pub fn bfs_distances(graph: &Graph, source: u32) -> Vec<u32> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "bfs source {source} out of range (n={n})");
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        for &u in &frontier {
            for &v in graph.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = d;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// All nodes within `k` hops of `source` (including `source` itself),
/// sorted ascending.
pub fn k_hop_neighborhood(graph: &Graph, source: u32, k: u32) -> Vec<u32> {
    let dist = bfs_distances(graph, source);
    let mut out: Vec<u32> =
        (0..graph.num_nodes() as u32).filter(|&v| dist[v as usize] <= k).collect();
    out.sort_unstable();
    out
}

/// Connected-component labeling. Returns `(labels, count)` where labels are
/// consecutive integers starting at 0, assigned in order of lowest member id.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut stack = Vec::new();
    for s in 0..n as u32 {
        if labels[s as usize] != u32::MAX {
            continue;
        }
        let label = count as u32;
        count += 1;
        labels[s as usize] = label;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &v in graph.neighbors(u) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = label;
                    stack.push(v);
                }
            }
        }
    }
    (labels, count)
}

/// True when every node is reachable from every other node.
pub fn is_connected(graph: &Graph) -> bool {
    if graph.num_nodes() == 0 {
        return true;
    }
    connected_components(graph).1 == 1
}

/// Eccentricity-free diameter estimate: the longest shortest path found by
/// running BFS from `samples` deterministic seeds (exact when `samples ≥ n`).
/// Returns `None` for a disconnected or empty graph.
pub fn diameter_lower_bound(graph: &Graph, samples: usize) -> Option<u32> {
    let n = graph.num_nodes();
    if n == 0 || !is_connected(graph) {
        return None;
    }
    let stride = (n / samples.max(1)).max(1);
    let mut best = 0u32;
    for s in (0..n).step_by(stride) {
        let dist = bfs_distances(graph, s as u32);
        let far = dist.iter().copied().max().unwrap();
        best = best.max(far);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path_counts_hops() {
        let g = generators::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_marks_unreachable_nodes() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn bfs_on_cycle_wraps_both_ways() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_rejects_bad_source() {
        bfs_distances(&generators::path(3), 7);
    }

    #[test]
    fn k_hop_zero_is_just_source() {
        let g = generators::path(5);
        assert_eq!(k_hop_neighborhood(&g, 2, 0), vec![2]);
    }

    #[test]
    fn k_hop_grows_monotonically() {
        let g = generators::path(7);
        let mut prev = 0;
        for k in 0..7 {
            let hood = k_hop_neighborhood(&g, 3, k);
            assert!(hood.len() >= prev);
            prev = hood.len();
        }
        assert_eq!(prev, 7);
    }

    #[test]
    fn k_hop_on_star_center_reaches_all_in_one() {
        let g = generators::star(6);
        assert_eq!(k_hop_neighborhood(&g, 0, 1).len(), 6);
    }

    #[test]
    fn components_of_disjoint_edges() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 4); // {0,1}, {2,3}, {4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn components_labels_are_consecutive_from_zero() {
        let g = Graph::from_edges(5, &[(1, 2), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        let mut seen: Vec<u32> = labels.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn connected_detects_connectivity() {
        assert!(is_connected(&generators::cycle(5)));
        assert!(!is_connected(&Graph::from_edges(3, &[(0, 1)])));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
    }

    #[test]
    fn diameter_of_path_is_length() {
        let g = generators::path(9);
        assert_eq!(diameter_lower_bound(&g, 9), Some(8));
    }

    #[test]
    fn diameter_of_complete_graph_is_one() {
        let g = generators::complete(5);
        assert_eq!(diameter_lower_bound(&g, 5), Some(1));
    }

    #[test]
    fn diameter_none_for_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(diameter_lower_bound(&g, 4), None);
    }
}
