//! Adjacency normalizations.
//!
//! GCON (Sec. IV-C2) uses the *row-stochastic* normalization with self-loops,
//! `Ã = D⁻¹(A + I)` (i.e. `r = 0` in `Ã = D^{r-1}ÂD^{-r}`), optionally with
//! the off-diagonal clip `p ≤ 1/2` of Lemma 1:
//!
//! ```text
//! Ã_ij = 0                      if i ≠ j and A_ij = 0
//! Ã_ij = min(1/(k_i+1), p)      if i ≠ j and A_ij = 1
//! Ã_ii = 1 − Σ_{u≠i} Ã_iu
//! ```
//!
//! With `p = 1/2` this reduces to the plain `D⁻¹(A+I)` (every node with at
//! least one neighbor has `1/(k_i+1) ≤ 1/2`). Lemma 1 guarantees for any power
//! `Ã^m` and any PPR/APPR combination `R_m`: non-negative entries, unit row
//! sums, and column sums bounded by `max((k_i+1)p, 1)` — properties the tests
//! below and the property suite check directly.
//!
//! The GCN baseline uses the *symmetric* normalization `D^{-1/2} Â D^{-1/2}`
//! of Kipf & Welling.

use crate::{Csr, Graph};

/// Row-stochastic normalization with self-loops and off-diagonal clip `p`
/// (Lemma 1). `p = 0.5` reproduces the unclipped `D⁻¹(A+I)` of Sec. IV-C2.
///
/// # Panics
/// Panics if `p` is not in `(0, 0.5]`.
pub fn row_stochastic(graph: &Graph, p: f64) -> Csr {
    assert!(p > 0.0 && p <= 0.5, "row_stochastic: clip p must lie in (0, 0.5], got {p}");
    let n = graph.num_nodes();
    let mut rows = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let k = graph.degree(u);
        let off = (1.0 / (k as f64 + 1.0)).min(p);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(k + 1);
        let mut off_sum = 0.0;
        for &v in graph.neighbors(u) {
            entries.push((v, off));
            off_sum += off;
        }
        entries.push((u, 1.0 - off_sum));
        rows.push(entries);
    }
    Csr::from_row_entries(n, n, rows)
}

/// The plain `Ã = D⁻¹(A + I)` of Sec. IV-C2 (clip `p = 1/2` is inactive).
pub fn row_stochastic_default(graph: &Graph) -> Csr {
    row_stochastic(graph, 0.5)
}

/// Symmetric GCN normalization `D^{-1/2} (A + I) D^{-1/2}` (Kipf & Welling),
/// used by the non-private GCN and DPGCN baselines.
pub fn symmetric(graph: &Graph) -> Csr {
    let n = graph.num_nodes();
    let inv_sqrt: Vec<f64> =
        (0..n as u32).map(|u| 1.0 / ((graph.degree(u) as f64 + 1.0).sqrt())).collect();
    let mut rows = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let du = inv_sqrt[u as usize];
        let mut entries: Vec<(u32, f64)> =
            graph.neighbors(u).iter().map(|&v| (v, du * inv_sqrt[v as usize])).collect();
        entries.push((u, du * du));
        rows.push(entries);
    }
    Csr::from_row_entries(n, n, rows)
}

/// The general parametric normalization `Ã = D^{r−1} Â D^{−r}` of Sec. II-A,
/// `r ∈ [0, 1]`, where `Â = A + I` and `D` is the degree matrix of `Â`.
///
/// Special cases: `r = 0` is the row-stochastic `D⁻¹Â` GCON trains with,
/// `r = 1/2` is the symmetric Kipf–Welling `D^{-1/2}ÂD^{-1/2}`, and `r = 1`
/// is the column-stochastic `ÂD⁻¹`. The paper fixes `r = 0`; this routine
/// exists so the normalization ablation (and the Lemma 1 "row sums = 1"
/// precondition, which *only* holds at `r = 0`) can be exercised directly.
///
/// # Panics
/// Panics if `r` is outside `[0, 1]`.
pub fn general_r(graph: &Graph, r: f64) -> Csr {
    assert!((0.0..=1.0).contains(&r), "general_r: r must lie in [0, 1], got {r}");
    let n = graph.num_nodes();
    // d̂_u = k_u + 1 (self-loop included).
    let dhat: Vec<f64> = (0..n as u32).map(|u| graph.degree(u) as f64 + 1.0).collect();
    let left: Vec<f64> = dhat.iter().map(|&d| d.powf(r - 1.0)).collect();
    let right: Vec<f64> = dhat.iter().map(|&d| d.powf(-r)).collect();
    let mut rows = Vec::with_capacity(n);
    for u in 0..n as u32 {
        let lu = left[u as usize];
        let mut entries: Vec<(u32, f64)> =
            graph.neighbors(u).iter().map(|&v| (v, lu * right[v as usize])).collect();
        entries.push((u, lu * right[u as usize]));
        rows.push(entries);
    }
    Csr::from_row_entries(n, n, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn row_stochastic_rows_sum_to_one() {
        let a = row_stochastic_default(&path3());
        for s in a.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn row_stochastic_values_path() {
        let a = row_stochastic_default(&path3());
        // node 0: degree 1 → off-diag 1/2, self 1/2
        assert!((a.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((a.get(0, 0) - 0.5).abs() < 1e-12);
        // node 1: degree 2 → off-diag 1/3 each, self 1/3
        assert!((a.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.get(1, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.get(1, 1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clip_reduces_offdiag_and_keeps_row_sum() {
        let g = path3();
        let p = 0.25;
        let a = row_stochastic(&g, p);
        // node 0 has degree 1: unclipped entry would be 0.5, clipped to 0.25.
        assert!((a.get(0, 1) - 0.25).abs() < 1e-12);
        assert!((a.get(0, 0) - 0.75).abs() < 1e-12);
        for s in a.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma1_column_bound_holds() {
        // Lemma 1 third bullet: column i sum ≤ max((k_i + 1) p, 1).
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (2, 3)]);
        for &p in &[0.5, 0.3, 0.1] {
            let a = row_stochastic(&g, p);
            let cs = a.col_sums();
            for (i, &s) in cs.iter().enumerate() {
                let k = g.degree(i as u32) as f64;
                let bound = ((k + 1.0) * p).max(1.0);
                assert!(s <= bound + 1e-12, "col {i}: {s} > bound {bound} at p={p}");
            }
        }
    }

    #[test]
    fn isolated_node_becomes_pure_self_loop() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let a = row_stochastic_default(&g);
        assert!((a.get(2, 2) - 1.0).abs() < 1e-12);
        assert_eq!(a.row(2).0.len(), 1);
    }

    #[test]
    fn symmetric_matches_manual_path() {
        let a = symmetric(&path3());
        // node 0 degree 1 → d̂ = 2; node 1 degree 2 → d̂ = 3.
        assert!((a.get(0, 1) - 1.0 / (2.0_f64.sqrt() * 3.0_f64.sqrt())).abs() < 1e-12);
        assert!((a.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((a.get(1, 1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn general_r_zero_matches_row_stochastic() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let a = general_r(&g, 0.0);
        let b = row_stochastic_default(&g);
        for i in 0..5 {
            for j in 0..5 {
                assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn general_r_half_matches_symmetric() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let a = general_r(&g, 0.5);
        let b = symmetric(&g);
        for i in 0..5 {
            for j in 0..5 {
                assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn general_r_one_is_column_stochastic() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let a = general_r(&g, 1.0);
        for s in a.col_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn general_r_row_sums_are_one_only_at_r_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        // Star graph: degrees differ, so row sums deviate from 1 for r > 0.
        let a = general_r(&g, 0.5);
        let sums = a.row_sums();
        assert!(sums.iter().any(|s| (s - 1.0).abs() > 1e-6));
        let b = general_r(&g, 0.0);
        for s in b.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn general_r_rejects_out_of_range() {
        general_r(&path3(), 1.5);
    }

    #[test]
    fn symmetric_is_symmetric() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let a = symmetric(&g);
        for i in 0..5 {
            for j in 0..5 {
                assert!((a.get(i, j) - a.get(j, i)).abs() < 1e-12);
            }
        }
    }
}
