#![warn(missing_docs)]
//! Graph substrate for the GCON reproduction.
//!
//! Provides the undirected [`Graph`] type backed by sorted adjacency lists,
//! a [`csr::Csr`] sparse-matrix type with a threaded sparse×dense product,
//! the two adjacency normalizations used in the paper
//! (row-stochastic `Ã = D⁻¹(A+I)` from Sec. IV-C2, optionally clipped per
//! Lemma 1, and the symmetric `D^{-1/2}ÂD^{-1/2}` used by the GCN baseline),
//! the homophily ratio of Definition 7, and synthetic graph generators with a
//! homophily dial (used by `gcon-datasets` to stand in for the paper's
//! benchmark graphs).
//!
//! Edge-level neighboring graphs (Definition 2 specialized to edge DP) are
//! first-class: [`Graph::with_edge_removed`] / [`Graph::with_edge_added`]
//! produce the `D'` needed by the sensitivity tests of Lemma 1/2.
//!
//! Dynamic graphs are served by the [`delta`] module: [`CsrDelta`] batches
//! edge inserts/removes and node onboarding, mutates the [`Graph`] in
//! place, and patches only the touched rows of the row-stochastic `Ã` —
//! bitwise identical to a from-scratch rebuild at O(Δ) re-derivation cost
//! (see the module docs for the exact contract).
//!
//! # Sparse-kernel structure and determinism
//!
//! The dense-output sparse kernels follow the same policy as `gcon-linalg`
//! (see its crate docs): [`Csr`] is generic over the element dtype through
//! [`CsrScalar`] (f64 + f32, f64 default), `Csr::spmm` consumes four
//! nonzeros of a CSR row per pass over the dense output row, and
//! `Csr::spmv` reduces each row with four independent accumulators. Each
//! kernel body is compiled per dtype at every [`gcon_runtime::KernelTier`]
//! (baseline / `avx2,fma` / `avx512f`) via
//! [`gcon_runtime::tier_dispatch!`] and selected by the process-wide
//! [`gcon_runtime::kernel_tier`]; the gather-bound `spmv` additionally
//! routes through the shape-aware [`resolve_spmv_tier`] gate, which caps
//! short-row matrices (mean nnz/row below
//! [`SPMV_AVX512_MIN_MEAN_NNZ`]) at the AVX2 compilation. The unroll
//! grouping is a function of the row's nonzero count alone — the pool
//! partitions whole rows, and every tier compiles the same source under
//! strict FP semantics — so results are byte-identical across
//! `GCON_THREADS` *and* across tiers within one dtype (the tier gate only
//! ever swaps between bit-identical compilations), and differ from a
//! strictly sequential reduction only by reassociation (≤ 1e-9 relative vs
//! the naive reference, pinned by `tests/kernel_properties.rs` at every
//! available tier). Both `spmv`/`spmv_t` have buffer-reusing `_into` twins
//! for solver inner loops.

pub mod csr;
pub mod delta;
pub mod generators;
pub mod graph;
pub mod homophily;
pub mod normalize;
pub mod stats;
pub mod traversal;

pub use csr::{resolve_spmv_tier, spmm_ops_performed, Csr, CsrScalar, SPMV_AVX512_MIN_MEAN_NNZ};
pub use delta::{CsrDelta, DeltaResult};
pub use graph::Graph;
pub use homophily::homophily_ratio;
