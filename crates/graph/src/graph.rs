//! The undirected simple graph type.

use serde::{Deserialize, Serialize};

/// An undirected simple graph on nodes `0..n` stored as sorted adjacency
/// lists. Self-loops are not stored (the normalizations add the `+I`
/// self-loop themselves, matching `Â = A + I` in Sec. IV-C2 of the paper).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self { n, adj: vec![Vec::new(); n], num_edges: 0 }
    }

    /// Builds a graph from an undirected edge list. Duplicate edges and
    /// self-loops are ignored.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Self::empty(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of node `u` (self-loops excluded).
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Sorted neighbor list of `u`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// True if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Inserts the undirected edge `{u, v}`. Returns false if it already
    /// existed or is a self-loop.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!((u as usize) < self.n && (v as usize) < self.n, "add_edge: node out of range");
        if u == v {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency lists out of sync");
                self.adj[v as usize].insert(pos_v, u);
                self.num_edges += 1;
                true
            }
        }
    }

    /// Removes the undirected edge `{u, v}`. Returns false if absent.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos_u) => {
                self.adj[u as usize].remove(pos_u);
                let pos_v =
                    self.adj[v as usize].binary_search(&u).expect("adjacency lists out of sync");
                self.adj[v as usize].remove(pos_v);
                self.num_edges -= 1;
                true
            }
        }
    }

    /// Edge-level neighboring graph `D'` obtained by removing `{u, v}`
    /// (Definition 2 of the paper, specialized to edge DP).
    ///
    /// # Panics
    /// Panics if the edge does not exist — a neighboring dataset must differ
    /// by exactly one edge.
    pub fn with_edge_removed(&self, u: u32, v: u32) -> Self {
        let mut g = self.clone();
        assert!(g.remove_edge(u, v), "with_edge_removed: edge {{{u},{v}}} not present");
        g
    }

    /// Edge-level neighboring graph obtained by adding `{u, v}`.
    pub fn with_edge_added(&self, u: u32, v: u32) -> Self {
        let mut g = self.clone();
        assert!(g.add_edge(u, v), "with_edge_added: edge {{{u},{v}}} already present");
        g
    }

    /// Appends `count` isolated nodes (ids `n .. n+count`), returning the id
    /// of the first one. Online node onboarding: the new nodes are valid
    /// endpoints for [`Graph::add_edge`] immediately, and every existing
    /// node id, edge and degree is unchanged.
    pub fn add_nodes(&mut self, count: usize) -> u32 {
        let first = self.n as u32;
        self.n += count;
        self.adj.resize_with(self.n, Vec::new);
        first
    }

    /// All undirected edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                if (u as u32) < v {
                    out.push((u as u32, v));
                }
            }
        }
        out
    }

    /// Average degree `2|E|/n` (0 for the empty node set).
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.n as f64
        }
    }

    /// Induced subgraph on `nodes` (deduplicated, order defines the new ids).
    /// Returns the subgraph and the old-id list parallel to the new ids.
    pub fn induced_subgraph(&self, nodes: &[u32]) -> (Self, Vec<u32>) {
        let mut kept: Vec<u32> = Vec::with_capacity(nodes.len());
        let mut new_id = vec![u32::MAX; self.n];
        for &u in nodes {
            assert!((u as usize) < self.n, "induced_subgraph: node {u} out of range");
            if new_id[u as usize] == u32::MAX {
                new_id[u as usize] = kept.len() as u32;
                kept.push(u);
            }
        }
        let mut sub = Self::empty(kept.len());
        for (new_u, &old_u) in kept.iter().enumerate() {
            for &old_v in self.neighbors(old_u) {
                let nv = new_id[old_v as usize];
                if nv != u32::MAX && (new_u as u32) < nv {
                    sub.add_edge(new_u as u32, nv);
                }
            }
        }
        (sub, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 1)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3); // duplicate ignored
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Graph::empty(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn remove_edge_symmetric() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.remove_edge(2, 1));
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.remove_edge(2, 1)); // already gone
    }

    #[test]
    fn neighboring_graph_differs_by_one_edge() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let gp = g.with_edge_removed(1, 2);
        assert_eq!(g.num_edges() - 1, gp.num_edges());
        assert!(!gp.has_edge(1, 2));
        let g2 = gp.with_edge_added(1, 2);
        assert_eq!(g2, g);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn with_edge_removed_missing_panics() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let _ = g.with_edge_removed(1, 2);
    }

    #[test]
    fn edges_listed_once() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 0)]);
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let (sub, kept) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(kept, vec![1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        let mut e = sub.edges();
        e.sort_unstable();
        // 1-2 and 2-3 survive (as 0-1, 1-2); 0-1/3-4/0-4 are cut.
        assert_eq!(e, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_dedups_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let (sub, kept) = g.induced_subgraph(&[1, 1, 0]);
        assert_eq!(kept, vec![1, 0]);
        assert!(sub.has_edge(0, 1));
        assert_eq!(sub.num_nodes(), 2);
    }

    #[test]
    fn add_nodes_onboards_isolated_ids() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let first = g.add_nodes(2);
        assert_eq!(first, 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.degree(4), 0);
        // New ids participate in edges immediately.
        assert!(g.add_edge(4, 1));
        assert_eq!(g.neighbors(4), &[1]);
        assert_eq!(g.add_nodes(0), 5); // zero-count is a no-op
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    fn degree_stats() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }
}
