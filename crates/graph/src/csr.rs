//! Compressed sparse row matrices and the threaded sparse×dense product that
//! implements every graph-convolution step in the workspace.
//!
//! [`Csr`] is generic over the element dtype through [`CsrScalar`] (an
//! extension of `gcon_linalg`'s sealed [`Scalar`] — f64 + f32, with f64 as
//! the default type parameter so `Csr` written bare is the double-precision
//! matrix the training pipeline uses). As in `gcon-linalg`,
//! `#[target_feature]` cannot apply to generic functions, so each dtype gets
//! its own concrete dispatch stack around a shared `#[inline(always)]`
//! generic body; the [`CsrScalar`] hooks bind the generic methods to them.
//!
//! Every sparse product — [`Csr::spmv`]/[`Csr::spmv_t`],
//! [`Csr::spmm`]/[`Csr::spmm_into`] and the transposed [`Csr::spmm_t_into`]
//! — increments a process-wide counter exposed by [`spmm_ops_performed`].
//! Counting at the kernel layer (rather than at call sites) means no product
//! can escape the accounting: the op-count acceptance tests for single-pass
//! propagation and for the block CGNR solver both read deltas of this
//! counter.

use gcon_linalg::{Mat, Scalar};
use gcon_runtime::KernelTier;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Running count of sparse products (`spmv`, `spmm`, `spmm_t`) performed in
/// this process (all threads).
static SPMM_OPS: AtomicU64 = AtomicU64::new(0);

/// Total sparse products performed since process start. A `Csr::spmv` call
/// counts 1, a `Csr::spmm`/`spmm_into`/`spmm_t_into` call counts 1 (one
/// sparse×dense product, whatever the dense width).
pub fn spmm_ops_performed() -> usize {
    SPMM_OPS.load(Ordering::Relaxed) as usize
}

/// Mean nonzeros per row below which the spmv kernel caps its dispatch at
/// the AVX2 compilation even when the process tier is AVX-512.
///
/// The spmv reduction is gather-bound (`x[col]` per nonzero). In the
/// small-row regime LLVM's AVX-512 gathers measured consistently ~35%
/// slower on the dev box (23–26 µs vs 16–18 µs over three `bench_linalg`
/// runs at n=2000, nnz=22000 — i.e. ~11 nnz/row); the wider gathers only
/// amortize their startup cost once rows are long enough to keep the
/// pipeline full. The crossover sits well above typical graph adjacency
/// rows, so propagation workloads always take the AVX2 compilation, while
/// long-row sparse operators (dense-ish rows from solver preconditioners)
/// keep the AVX-512 one.
pub const SPMV_AVX512_MIN_MEAN_NNZ: f64 = 64.0;

/// Shape-aware tier resolution for the spmv kernel: caps `requested` at
/// [`KernelTier::Avx2`] when the mean row length is below
/// [`SPMV_AVX512_MIN_MEAN_NNZ`] (the gather-bound small-row regime — see
/// the constant's docs for the measurements).
///
/// A pure function of (tier, shape) — never of the data values or the
/// thread partition — and all tiers compute byte-identical results, so the
/// gate affects speed only. Kept as a free function (alongside
/// `gcon_runtime::resolve_tier`, which resolves the *requested* tier
/// against the CPU) so the decision is unit-testable without constructing
/// matrices.
pub fn resolve_spmv_tier(requested: KernelTier, mean_row_nnz: f64) -> KernelTier {
    match requested {
        KernelTier::Avx512 if mean_row_nnz < SPMV_AVX512_MIN_MEAN_NNZ => KernelTier::Avx2,
        t => t,
    }
}

/// The element dtype of a [`Csr`] matrix: `gcon_linalg`'s sealed [`Scalar`]
/// (f64 + f32) extended with the CSR kernel hooks.
///
/// Like the dense kernel hooks on [`Scalar`], these bind the generic `Csr`
/// methods to concrete per-dtype functions compiled through
/// [`gcon_runtime::tier_dispatch!`] — implementation plumbing, not a
/// user-facing API; call the `Csr` methods instead.
pub trait CsrScalar: Scalar {
    /// Tier-dispatched row-block stage of [`Csr::spmm_into`].
    fn kernel_spmm_block(sp: &Csr<Self>, b: &Mat<Self>, out: &mut [Self], start: usize, end: usize);
    /// Shape-aware tier-dispatched row-reduction stage of
    /// [`Csr::spmv_into`] (see [`resolve_spmv_tier`]).
    fn kernel_spmv_fill(sp: &Csr<Self>, x: &[Self], out: &mut [Self]);
    /// Tier-dispatched scatter stage of [`Csr::spmv_t_into`].
    fn kernel_spmv_t_fill(sp: &Csr<Self>, x: &[Self], out: &mut [Self]);
}

/// A sparse matrix in compressed sparse row format, generic over the
/// element [`CsrScalar`] (default `f64`).
///
/// Used for the normalized adjacency `Ã` so that one propagation step
/// `Z ← Ã Z` costs O(nnz · d) instead of O(n² · d). The paper never needs the
/// dense `R_m` (Eq. 9) explicitly — `gcon-core` carries `Z_m = R_m X` through
/// the recursion `Z_m = (1-α) Ã Z_{m-1} + α X`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Csr<S: CsrScalar = f64> {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<S>,
}

impl<S: CsrScalar> Csr<S> {
    /// Builds a CSR matrix from per-row `(column, value)` pairs. Pairs within
    /// a row need not be sorted; duplicates are summed.
    pub fn from_row_entries(rows: usize, cols: usize, row_entries: Vec<Vec<(u32, S)>>) -> Self {
        assert_eq!(row_entries.len(), rows, "from_row_entries: row count mismatch");
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for mut entries in row_entries {
            entries.sort_unstable_by_key(|&(j, _)| j);
            let mut last: Option<u32> = None;
            for (j, v) in entries {
                assert!((j as usize) < cols, "from_row_entries: column {j} out of range");
                if last == Some(j) {
                    *values.last_mut().unwrap() += v;
                } else {
                    indices.push(j);
                    values.push(v);
                    last = Some(j);
                }
            }
            indptr.push(indices.len());
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// Rebuilds the matrix with the given rows replaced — and, when
    /// `new_rows > self.rows()`, trailing rows appended — copying every
    /// untouched row's span verbatim.
    ///
    /// This is the O(Δ) structural path behind `CsrDelta` (`delta` module):
    /// the replaced rows arrive **already sorted** by column (derived from
    /// the graph's sorted adjacency lists), so unlike
    /// [`Csr::from_row_entries`] no entry is ever sorted or deduplicated.
    /// The work is O(changed entries) of emission plus one bulk
    /// `extend_from_slice` per contiguous gap of untouched rows (memcpy
    /// speed, no per-entry processing). Untouched rows are bit-identical to
    /// the originals by construction.
    ///
    /// # Panics
    /// Panics unless `new_rows ≥ self.rows()`, `new_cols ≥ self.cols()`,
    /// `replaced` is sorted by row index without duplicates, every appended
    /// row index in `self.rows()..new_rows` is present in `replaced`, and
    /// each row's entries are strictly column-sorted within `new_cols`.
    pub fn with_rows_replaced(
        &self,
        new_rows: usize,
        new_cols: usize,
        replaced: &[(usize, Vec<(u32, S)>)],
    ) -> Csr<S> {
        assert!(new_rows >= self.rows, "with_rows_replaced: rows cannot shrink");
        assert!(new_cols >= self.cols, "with_rows_replaced: cols cannot shrink");
        let delta_nnz: usize = replaced.iter().map(|(_, e)| e.len()).sum();
        let mut indptr = Vec::with_capacity(new_rows + 1);
        let mut indices = Vec::with_capacity(self.nnz() + delta_nnz);
        let mut values = Vec::with_capacity(self.nnz() + delta_nnz);
        indptr.push(0);
        let mut next_row = 0usize; // next output row not yet emitted
        for (ri, entries) in replaced {
            assert!(
                *ri >= next_row,
                "with_rows_replaced: replaced rows must be sorted without duplicates"
            );
            assert!(*ri < new_rows, "with_rows_replaced: row {ri} out of range");
            // Bulk-copy the untouched gap [next_row, ri) from the original.
            let gap_end = (*ri).min(self.rows);
            if next_row < gap_end {
                let (s, e) = (self.indptr[next_row], self.indptr[gap_end]);
                let base = indices.len();
                indices.extend_from_slice(&self.indices[s..e]);
                values.extend_from_slice(&self.values[s..e]);
                indptr.extend((next_row..gap_end).map(|r| self.indptr[r + 1] - s + base));
            }
            // Emit the replacement row (already sorted — verified, not sorted).
            let mut last: Option<u32> = None;
            for &(j, v) in entries {
                assert!((j as usize) < new_cols, "with_rows_replaced: column {j} out of range");
                assert!(
                    last.is_none_or(|l| l < j),
                    "with_rows_replaced: row {ri} entries must be strictly column-sorted"
                );
                last = Some(j);
                indices.push(j);
                values.push(v);
            }
            indptr.push(indices.len());
            next_row = ri + 1;
        }
        // Trailing untouched rows.
        if next_row < self.rows {
            let (s, e) = (self.indptr[next_row], self.indptr[self.rows]);
            let base = indices.len();
            indices.extend_from_slice(&self.indices[s..e]);
            values.extend_from_slice(&self.values[s..e]);
            indptr.extend((next_row..self.rows).map(|r| self.indptr[r + 1] - s + base));
        }
        assert_eq!(
            indptr.len(),
            new_rows + 1,
            "with_rows_replaced: every appended row must be provided"
        );
        Csr { rows: new_rows, cols: new_cols, indptr, indices, values }
    }

    /// The `n × n` identity in CSR form.
    pub fn eye(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![S::ONE; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Mean nonzeros per row (0 for an empty matrix) — the shape statistic
    /// the spmv tier gate keys on (see [`resolve_spmv_tier`]).
    #[inline]
    pub fn mean_row_nnz(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.rows as f64
        }
    }

    /// `(columns, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[S]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Element lookup (O(log nnz_row)).
    pub fn get(&self, i: usize, j: usize) -> S {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => S::ZERO,
        }
    }

    /// Sum of each row (sequential accumulation per row).
    pub fn row_sums(&self) -> Vec<S> {
        (0..self.rows).map(|i| self.row(i).1.iter().fold(S::ZERO, |acc, &v| acc + v)).collect()
    }

    /// Sum of each column.
    pub fn col_sums(&self) -> Vec<S> {
        let mut out = vec![S::ZERO; self.cols];
        for (&j, &v) in self.indices.iter().zip(&self.values) {
            out[j as usize] += v;
        }
        out
    }

    /// Dense `self · x` for a vector.
    pub fn spmv(&self, x: &[S]) -> Vec<S> {
        let mut out = Vec::new();
        self.spmv_into(x, &mut out);
        out
    }

    /// Dense `self · x` written into `out` (resized to `self.rows()`,
    /// backing allocation reused). The buffer-reusing twin iterative
    /// solvers call per step so the inner loop performs no allocation.
    ///
    /// Each row's reduction is unrolled four nonzeros per pass with
    /// independent accumulators; the pairing depends only on the row's
    /// nonzero count, so results are deterministic.
    pub fn spmv_into(&self, x: &[S], out: &mut Vec<S>) {
        assert_eq!(x.len(), self.cols, "spmv: dimension mismatch");
        SPMM_OPS.fetch_add(1, Ordering::Relaxed);
        out.clear();
        out.resize(self.rows, S::ZERO);
        S::kernel_spmv_fill(self, x, out);
    }

    /// Dense `selfᵀ · x` for a vector, applied as an O(nnz) scatter over the
    /// rows of `self` — no transposed structure required. For repeated
    /// transposed products on dense blocks, precompute [`Csr::transpose`]
    /// and use the pooled [`Csr::spmm_into`] instead.
    pub fn spmv_t(&self, x: &[S]) -> Vec<S> {
        let mut out = Vec::new();
        self.spmv_t_into(x, &mut out);
        out
    }

    /// Dense `selfᵀ · x` written into `out` (resized to `self.cols()`,
    /// backing allocation reused) — the allocation-free twin of
    /// [`Csr::spmv_t`].
    ///
    /// Deliberately **not** routed through [`resolve_spmv_tier`]: that gate
    /// models the gather-*reduction* kernel of [`Csr::spmv_into`], where the
    /// vectorized loop length is the row nnz and short rows leave AVX-512
    /// gathers stalled. This kernel is the opposite shape — an O(nnz)
    /// write-*scatter* whose indexed stores stay scalar in every tier (no
    /// conflict detection), so there is no row-length crossover to gate on.
    /// Pinned by `transposed_kernels_need_no_spmv_gate`, which also shows
    /// `self.mean_row_nnz()` would be the wrong statistic for a transposed
    /// product in the first place (the operand acting row-wise is
    /// `selfᵀ`, whose mean row length is `nnz/cols`, not `nnz/rows`).
    pub fn spmv_t_into(&self, x: &[S], out: &mut Vec<S>) {
        assert_eq!(x.len(), self.rows, "spmv_t: dimension mismatch");
        SPMM_OPS.fetch_add(1, Ordering::Relaxed);
        out.clear();
        out.resize(self.cols, S::ZERO);
        S::kernel_spmv_t_fill(self, x, out);
    }

    /// Dense `self · B` (sparse × dense), parallelized over row blocks on
    /// the shared `gcon-runtime` pool.
    pub fn spmm(&self, b: &Mat<S>) -> Mat<S> {
        // `spmm_into` shapes and zero-fills; starting empty avoids a
        // redundant full-size zero write.
        let mut out = Mat::default();
        self.spmm_into(b, &mut out);
        out
    }

    /// Dense `self · B` written into `out`, which is reshaped (reusing its
    /// backing buffer when capacity allows) to `self.rows() × b.cols()`.
    ///
    /// This is the hot kernel of every propagation step; the `_into` form
    /// lets the APPR recursion ping-pong between two long-lived buffers
    /// instead of allocating a fresh matrix per step.
    pub fn spmm_into(&self, b: &Mat<S>, out: &mut Mat<S>) {
        assert_eq!(self.cols, b.rows(), "spmm: dimension mismatch");
        SPMM_OPS.fetch_add(1, Ordering::Relaxed);
        let d = b.cols();
        out.reset_to_zeros(self.rows, d);
        let work = self.nnz() * d;
        gcon_runtime::parallel_rows(out.as_mut_slice(), self.rows, d, work, |block, start, end| {
            S::kernel_spmm_block(self, b, block, start, end);
        });
    }

    /// The transpose as a new CSR matrix, built with an O(nnz) counting
    /// sort. Column indices within each transposed row come out sorted.
    ///
    /// Repeated `selfᵀ · B` products (e.g. the `Ãᵀ` application inside every
    /// CGNR iteration) should precompute this once and call [`Csr::spmm_into`]
    /// on the result — that runs the same pooled row-block kernel as the
    /// forward product instead of an O(nnz) scatter per application.
    pub fn transpose(&self) -> Csr<S> {
        let mut indptr = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            indptr[j as usize + 1] += 1;
        }
        for j in 0..self.cols {
            indptr[j + 1] += indptr[j];
        }
        let mut next = indptr.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![S::ZERO; self.nnz()];
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let pos = next[j as usize];
                indices[pos] = i as u32;
                values[pos] = v;
                next[j as usize] += 1;
            }
        }
        Csr { rows: self.cols, cols: self.rows, indptr, indices, values }
    }

    /// Dense `selfᵀ · B` written into `out` (reshaped to
    /// `self.cols() × b.cols()`), running the pooled row-block kernel on a
    /// transposed copy of `self`.
    ///
    /// No [`resolve_spmv_tier`] gate applies here either: the row-block
    /// spmm kernel vectorizes over the **dense** feature dimension of `b`
    /// (unit-stride loads of width `b.cols()`), so its AVX-512 profitability
    /// is independent of how many nonzeros a sparse row holds — the shape
    /// statistic the spmv gate keys on never enters the inner loop.
    ///
    /// This transposes on every call; callers applying `selfᵀ` repeatedly
    /// (iterative solvers) should hold [`Csr::transpose`] themselves and use
    /// [`Csr::spmm_into`] directly, which is what the PPR block operator in
    /// `gcon-core` does.
    pub fn spmm_t_into(&self, b: &Mat<S>, out: &mut Mat<S>) {
        self.transpose().spmm_into(b, out);
    }

    /// Element-wise conversion to another [`CsrScalar`] (structure shared
    /// semantics: indices/indptr copied, values converted through `f64`).
    /// The sparse counterpart of `Mat::convert`.
    pub fn convert<T: CsrScalar>(&self) -> Csr<T> {
        Csr {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        }
    }

    /// Converts to a dense matrix (small graphs / tests only).
    pub fn to_dense(&self) -> Mat<S> {
        let mut m = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m.set(i, j as usize, v);
            }
        }
        m
    }
}

/// The `spmm` kernel body. Four nonzeros of a CSR row are consumed per pass
/// over the dense output row: one read-modify-write of `out` carries four
/// scaled `B` rows (independent accumulators per column, so LLVM vectorizes
/// across the feature dimension — at the dtype's full lane width — and the
/// four products overlap). The 4-group structure depends only on the row's
/// nonzero count — never on the thread partition, which splits whole rows —
/// so results are byte-identical across `GCON_THREADS` values (and across
/// dispatch tiers, which compile this same body).
#[inline(always)]
fn spmm_block_body<S: CsrScalar>(sp: &Csr<S>, b: &Mat<S>, out: &mut [S], start: usize, end: usize) {
    let d = b.cols();
    for i in start..end {
        let (cols, vals) = sp.row(i);
        let orow = &mut out[(i - start) * d..(i - start + 1) * d];
        let main = cols.len() - cols.len() % 4;
        for (cj, cv) in cols[..main].chunks_exact(4).zip(vals[..main].chunks_exact(4)) {
            let b0 = b.row(cj[0] as usize);
            let b1 = b.row(cj[1] as usize);
            let b2 = b.row(cj[2] as usize);
            let b3 = b.row(cj[3] as usize);
            let (v0, v1, v2, v3) = (cv[0], cv[1], cv[2], cv[3]);
            for ((((o, &x0), &x1), &x2), &x3) in orow.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
                *o += (v0 * x0 + v1 * x1) + (v2 * x2 + v3 * x3);
            }
        }
        for (&j, &v) in cols[main..].iter().zip(&vals[main..]) {
            let brow = b.row(j as usize);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += v * bv;
            }
        }
    }
}

/// The `spmv` kernel body: each row reduces four nonzeros per pass with
/// independent accumulators; the pairing depends only on the row's nonzero
/// count, so results are deterministic.
#[inline(always)]
fn spmv_fill_body<S: CsrScalar>(sp: &Csr<S>, x: &[S], out: &mut [S]) {
    for (i, o) in out.iter_mut().enumerate() {
        let (cols, vals) = sp.row(i);
        let main = cols.len() - cols.len() % 4;
        let mut acc = [S::ZERO; 4];
        for (cj, cv) in cols[..main].chunks_exact(4).zip(vals[..main].chunks_exact(4)) {
            for l in 0..4 {
                acc[l] += cv[l] * x[cj[l] as usize];
            }
        }
        let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (&j, &v) in cols[main..].iter().zip(&vals[main..]) {
            s += v * x[j as usize];
        }
        *o = s;
    }
}

/// The `spmv_t` kernel body: an O(nnz) row-major scatter that skips zero
/// entries of `x`; the accumulation order per output element is the row
/// order of `sp`, fixed for a given input.
#[inline(always)]
fn spmv_t_fill_body<S: CsrScalar>(sp: &Csr<S>, x: &[S], out: &mut [S]) {
    for (i, &xi) in x.iter().enumerate() {
        if xi == S::ZERO {
            continue;
        }
        let (cols, vals) = sp.row(i);
        for (&j, &v) in cols.iter().zip(vals) {
            out[j as usize] += v * xi;
        }
    }
}

// Per-dtype dispatch stacks. spmm and spmv_t go through the standard
// three-tier macro; spmv hand-rolls the same dispatch shape so it can route
// through `resolve_spmv_tier` (the macro's cap arm is unconditional).

gcon_runtime::tier_dispatch! {
    /// f64 row-block stage of [`Csr::spmm_into`] — see [`spmm_block_body`].
    fn spmm_block_f64 / spmm_block_f64_avx2 / spmm_block_f64_avx512 / spmm_block_f64_impl(
        sp: &Csr<f64>, b: &Mat<f64>, out: &mut [f64], start: usize, end: usize)
}

#[inline(always)]
fn spmm_block_f64_impl(sp: &Csr<f64>, b: &Mat<f64>, out: &mut [f64], start: usize, end: usize) {
    spmm_block_body(sp, b, out, start, end)
}

gcon_runtime::tier_dispatch! {
    /// f32 row-block stage of [`Csr::spmm_into`] — see [`spmm_block_body`].
    fn spmm_block_f32 / spmm_block_f32_avx2 / spmm_block_f32_avx512 / spmm_block_f32_impl(
        sp: &Csr<f32>, b: &Mat<f32>, out: &mut [f32], start: usize, end: usize)
}

#[inline(always)]
fn spmm_block_f32_impl(sp: &Csr<f32>, b: &Mat<f32>, out: &mut [f32], start: usize, end: usize) {
    spmm_block_body(sp, b, out, start, end)
}

gcon_runtime::tier_dispatch! {
    /// f64 scatter stage of [`Csr::spmv_t_into`] — see [`spmv_t_fill_body`].
    fn spmv_t_fill_f64 / spmv_t_fill_f64_avx2 / spmv_t_fill_f64_avx512 / spmv_t_fill_f64_impl(
        sp: &Csr<f64>, x: &[f64], out: &mut [f64])
}

#[inline(always)]
fn spmv_t_fill_f64_impl(sp: &Csr<f64>, x: &[f64], out: &mut [f64]) {
    spmv_t_fill_body(sp, x, out)
}

gcon_runtime::tier_dispatch! {
    /// f32 scatter stage of [`Csr::spmv_t_into`] — see [`spmv_t_fill_body`].
    fn spmv_t_fill_f32 / spmv_t_fill_f32_avx2 / spmv_t_fill_f32_avx512 / spmv_t_fill_f32_impl(
        sp: &Csr<f32>, x: &[f32], out: &mut [f32])
}

#[inline(always)]
fn spmv_t_fill_f32_impl(sp: &Csr<f32>, x: &[f32], out: &mut [f32]) {
    spmv_t_fill_body(sp, x, out)
}

/// Hand-written spmv dispatch (per dtype): the same three-tier shape as
/// [`gcon_runtime::tier_dispatch!`], but the effective tier runs through
/// [`resolve_spmv_tier`] first so the gather-bound small-row regime caps at
/// the AVX2 compilation. All compilations produce identical bytes, so the
/// gate is invisible to the conformance suite.
macro_rules! spmv_dispatch {
    ($name:ident / $avx2:ident / $avx512:ident, $dtype:ty) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        fn $avx2(sp: &Csr<$dtype>, x: &[$dtype], out: &mut [$dtype]) {
            spmv_fill_body(sp, x, out)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512vl,avx512dq,avx512bw")]
        fn $avx512(sp: &Csr<$dtype>, x: &[$dtype], out: &mut [$dtype]) {
            spmv_fill_body(sp, x, out)
        }

        fn $name(sp: &Csr<$dtype>, x: &[$dtype], out: &mut [$dtype]) {
            #[cfg(target_arch = "x86_64")]
            match resolve_spmv_tier(gcon_runtime::kernel_tier(), sp.mean_row_nnz()) {
                // SAFETY: `kernel_tier()` never exceeds the detected feature
                // set, and `resolve_spmv_tier` only ever lowers the tier, so
                // the CPU supports every feature the callee is compiled with.
                KernelTier::Avx512 => return unsafe { $avx512(sp, x, out) },
                KernelTier::Avx2 => return unsafe { $avx2(sp, x, out) },
                KernelTier::Scalar => {}
            }
            spmv_fill_body(sp, x, out)
        }
    };
}

spmv_dispatch!(spmv_fill_f64 / spmv_fill_f64_avx2 / spmv_fill_f64_avx512, f64);
spmv_dispatch!(spmv_fill_f32 / spmv_fill_f32_avx2 / spmv_fill_f32_avx512, f32);

impl CsrScalar for f64 {
    #[inline]
    fn kernel_spmm_block(sp: &Csr<f64>, b: &Mat<f64>, out: &mut [f64], start: usize, end: usize) {
        spmm_block_f64(sp, b, out, start, end)
    }
    #[inline]
    fn kernel_spmv_fill(sp: &Csr<f64>, x: &[f64], out: &mut [f64]) {
        spmv_fill_f64(sp, x, out)
    }
    #[inline]
    fn kernel_spmv_t_fill(sp: &Csr<f64>, x: &[f64], out: &mut [f64]) {
        spmv_t_fill_f64(sp, x, out)
    }
}

impl CsrScalar for f32 {
    #[inline]
    fn kernel_spmm_block(sp: &Csr<f32>, b: &Mat<f32>, out: &mut [f32], start: usize, end: usize) {
        spmm_block_f32(sp, b, out, start, end)
    }
    #[inline]
    fn kernel_spmv_fill(sp: &Csr<f32>, x: &[f32], out: &mut [f32]) {
        spmv_fill_f32(sp, x, out)
    }
    #[inline]
    fn kernel_spmv_t_fill(sp: &Csr<f32>, x: &[f32], out: &mut [f32]) {
        spmv_t_fill_f32(sp, x, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_row_entries(
            3,
            3,
            vec![vec![(2, 2.0), (0, 1.0)], vec![], vec![(0, 3.0), (1, 4.0)]],
        )
    }

    #[test]
    fn build_sorts_and_dedups() {
        let m = Csr::from_row_entries(1, 3, vec![vec![(2, 1.0), (0, 1.0), (2, 3.0)]]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn row_and_col_sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        assert_eq!(m.spmv(&[1.0, 2.0, 3.0]), vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn spmv_t_matches_transposed_spmv() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.spmv_t(&x), m.transpose().spmv(&x));
    }

    /// The shape gate is a pure function: AVX-512 requests are lowered to
    /// AVX2 below the crossover and kept above it; lower tiers pass through
    /// untouched at any shape.
    #[test]
    fn resolve_spmv_tier_gates_on_mean_row_nnz() {
        use KernelTier::*;
        // Below the crossover: avx512 is capped, others unchanged.
        for &nnz in &[0.0, 1.0, 11.0, SPMV_AVX512_MIN_MEAN_NNZ - 1e-9] {
            assert_eq!(resolve_spmv_tier(Avx512, nnz), Avx2, "nnz={nnz}");
            assert_eq!(resolve_spmv_tier(Avx2, nnz), Avx2);
            assert_eq!(resolve_spmv_tier(Scalar, nnz), Scalar);
        }
        // At/above the crossover: everything passes through.
        for &nnz in &[SPMV_AVX512_MIN_MEAN_NNZ, 100.0, 1e6] {
            assert_eq!(resolve_spmv_tier(Avx512, nnz), Avx512, "nnz={nnz}");
            assert_eq!(resolve_spmv_tier(Avx2, nnz), Avx2);
            assert_eq!(resolve_spmv_tier(Scalar, nnz), Scalar);
        }
    }

    /// The tier-gate audit for the transposed kernels: `spmv_t`/`spmm_t`
    /// take no [`resolve_spmv_tier`] gate (see their docs for the kernel
    /// shapes). This pins the supporting fact that makes any such gate
    /// ill-posed: the statistic the spmv gate keys on is not
    /// transpose-invariant, so `self.mean_row_nnz()` can sit on the
    /// opposite side of the crossover from the operand that actually acts
    /// row-wise (`selfᵀ`) — while the results stay exactly the transposed
    /// products at every shape.
    #[test]
    fn transposed_kernels_need_no_spmv_gate() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let (rows, cols) = (2usize, 400usize);
        let nnz_per_row = SPMV_AVX512_MIN_MEAN_NNZ as usize * 2;
        let entries: Vec<Vec<(u32, f64)>> = (0..rows)
            .map(|i| {
                (0..nnz_per_row)
                    .map(|k| (((i + k * 3) % cols) as u32, rng.gen_range(-1.0..1.0)))
                    .collect()
            })
            .collect();
        let wide = Csr::from_row_entries(rows, cols, entries);
        // The forward statistic is above the crossover, the transposed one
        // far below it: one gate input cannot serve both orientations.
        assert!(wide.mean_row_nnz() >= SPMV_AVX512_MIN_MEAN_NNZ);
        assert!(wide.transpose().mean_row_nnz() < SPMV_AVX512_MIN_MEAN_NNZ);

        // Ungated correctness at this gate-straddling shape: the scatter
        // kernel equals the explicit transpose bitwise (same accumulation
        // order — the counting-sort transpose preserves row order), and
        // spmm_t equals it columnwise.
        let x: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert_eq!(wide.spmv_t(&x), wide.transpose().spmv(&x));
        let b = Mat::from_fn(rows, 3, |i, j| (i * 3 + j) as f64 - 2.5);
        let mut out = Mat::zeros(cols, 3);
        wide.spmm_t_into(&b, &mut out);
        for j in 0..3 {
            let col: Vec<f64> = (0..rows).map(|i| b.get(i, j)).collect();
            let expect = wide.spmv_t(&col);
            for (i, &e) in expect.iter().enumerate() {
                assert_eq!(out.get(i, j), e, "spmm_t col {j} row {i}");
            }
        }
    }

    #[test]
    fn mean_row_nnz_statistic() {
        assert_eq!(sample().mean_row_nnz(), 4.0 / 3.0);
        let empty: Csr = Csr::from_row_entries(0, 0, vec![]);
        assert_eq!(empty.mean_row_nnz(), 0.0);
    }

    /// spmv results are identical on either side of the tier gate: a
    /// long-row matrix (above the crossover, AVX-512 eligible) and its
    /// row-split equivalent (below it) agree with the dense reference.
    #[test]
    fn spmv_agrees_across_the_tier_gate_boundary() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let cols = 400;
        let nnz_per_row = SPMV_AVX512_MIN_MEAN_NNZ as usize + 8;
        // One long row (above crossover) vs the same entries split over
        // many short rows (below crossover).
        let entries: Vec<(u32, f64)> = (0..nnz_per_row as u32 * 4)
            .map(|j| (j % cols as u32, rng.gen_range(-1.0..1.0)))
            .collect();
        let long = Csr::from_row_entries(
            4,
            cols,
            entries.chunks(nnz_per_row).map(|c| c.to_vec()).collect(),
        );
        assert!(long.mean_row_nnz() >= SPMV_AVX512_MIN_MEAN_NNZ);
        let short = Csr::from_row_entries(
            32,
            cols,
            entries.chunks(entries.len() / 32).map(|c| c.to_vec()).collect(),
        );
        assert!(short.mean_row_nnz() < SPMV_AVX512_MIN_MEAN_NNZ);
        let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for sp in [&long, &short] {
            let y = sp.spmv(&x);
            let dense = sp.to_dense();
            for (i, &yi) in y.iter().enumerate() {
                let slow: f64 = (0..cols).map(|j| dense.get(i, j) * x[j]).sum();
                assert!((yi - slow).abs() < 1e-10, "row {i}: {yi} vs {slow}");
            }
        }
    }

    /// The `_into` twins reuse a stale buffer of the wrong length and still
    /// match the allocating forms bit-for-bit.
    #[test]
    fn spmv_into_twins_match_allocating() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let (rows, cols) = (37, 29);
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for row in entries.iter_mut() {
            for j in 0..cols as u32 {
                if rng.gen::<f64>() < 0.3 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(rows, cols, entries);
        let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xt: Vec<f64> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut reused = vec![f64::NAN; 5];
        sp.spmv_into(&x, &mut reused);
        assert_eq!(reused, sp.spmv(&x));
        sp.spmv_t_into(&xt, &mut reused);
        assert_eq!(reused, sp.spmv_t(&xt));
    }

    /// Nonzero counts around the 4-wide unroll boundary all match the dense
    /// reference (rows with 0..=9 nonzeros).
    #[test]
    fn spmv_unroll_tails_match_dense() {
        let n = 10usize;
        let entries: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|i| (0..i as u32).map(|j| (j, (i as f64 + 1.0) * 0.1 + j as f64)).collect())
            .collect();
        let sp = Csr::from_row_entries(n, n, entries);
        let x: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 1.0).collect();
        let y = sp.spmv(&x);
        let dense = sp.to_dense();
        for (i, &yi) in y.iter().enumerate() {
            let slow: f64 = (0..n).map(|j| dense.get(i, j) * x[j]).sum();
            assert!((yi - slow).abs() < 1e-12, "row {i} (nnz {i}): {yi} vs {slow}");
        }
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        // random sparse 40x40, dense 40x17
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); 40];
        for row in entries.iter_mut() {
            for j in 0..40u32 {
                if rng.gen::<f64>() < 0.15 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(40, 40, entries);
        let b: Mat = Mat::uniform(40, 17, 1.0, &mut rng);
        let fast = sp.spmm(&b);
        let slow = gcon_linalg::ops::matmul(&sp.to_dense(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    /// The f32 CSR kernels (spmm, spmv, spmv_t) match the f64 path widened
    /// within f32 tolerance, and the converted structure is shared.
    #[test]
    fn f32_sparse_kernels_match_f64_within_tolerance() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let n = 50;
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for row in entries.iter_mut() {
            for j in 0..n as u32 {
                if rng.gen::<f64>() < 0.2 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp64 = Csr::from_row_entries(n, n, entries);
        let sp32: Csr<f32> = sp64.convert();
        assert_eq!(sp32.nnz(), sp64.nnz());
        assert_eq!((sp32.rows(), sp32.cols()), (sp64.rows(), sp64.cols()));

        let b64: Mat = Mat::uniform(n, 9, 1.0, &mut rng);
        let b32 = b64.convert::<f32>();
        let y64 = sp64.spmm(&b64);
        let y32 = sp32.spmm(&b32);
        for (x32, x64) in y32.as_slice().iter().zip(y64.as_slice()) {
            assert!((*x32 as f64 - x64).abs() < 1e-4, "{x32} vs {x64}");
        }

        let x64v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x32v: Vec<f32> = x64v.iter().map(|&v| v as f32).collect();
        for (a, b) in sp32.spmv(&x32v).iter().zip(sp64.spmv(&x64v)) {
            assert!((*a as f64 - b).abs() < 1e-4);
        }
        for (a, b) in sp32.spmv_t(&x32v).iter().zip(sp64.spmv_t(&x64v)) {
            assert!((*a as f64 - b).abs() < 1e-4);
        }
    }

    #[test]
    fn spmm_parallel_path_matches_dense() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let n = 300;
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for row in entries.iter_mut() {
            for j in 0..n as u32 {
                if rng.gen::<f64>() < 0.05 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(n, n, entries);
        let b: Mat = Mat::uniform(n, 64, 1.0, &mut rng);
        let fast = sp.spmm(&b);
        let slow = gcon_linalg::ops::matmul(&sp.to_dense(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_spmm_is_neutral() {
        let b = Mat::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let i5: Csr = Csr::eye(5);
        assert_eq!(i5.spmm(&b), b);
    }

    #[test]
    fn to_dense_roundtrip_values() {
        let m = sample().to_dense();
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let (rows, cols) = (23, 31);
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
        for row in entries.iter_mut() {
            for j in 0..cols as u32 {
                if rng.gen::<f64>() < 0.2 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(rows, cols, entries);
        let t = sp.transpose();
        assert_eq!((t.rows(), t.cols()), (cols, rows));
        assert_eq!(t.nnz(), sp.nnz());
        assert_eq!(t.to_dense(), sp.to_dense().transpose());
        // Involution.
        assert_eq!(t.transpose(), sp);
    }

    #[test]
    fn spmm_t_matches_dense_transposed_matmul() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        let n = 40;
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for row in entries.iter_mut() {
            for j in 0..n as u32 {
                if rng.gen::<f64>() < 0.1 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(n, n, entries);
        let b: Mat = Mat::uniform(n, 7, 1.0, &mut rng);
        let mut fast = Mat::default();
        sp.spmm_t_into(&b, &mut fast);
        let slow = gcon_linalg::ops::matmul(&sp.to_dense().transpose(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn sparse_products_are_counted() {
        // Other unit tests in this binary may run sparse products
        // concurrently, so only a lower bound is asserted here; the exact
        // per-call accounting is pinned down by the serialized op-count
        // suite in `tests/runtime_opcount.rs`.
        let m = sample();
        let b = Mat::from_fn(3, 2, |i, j| (i + j) as f64);
        let before = spmm_ops_performed();
        let _ = m.spmv(&[1.0, 2.0, 3.0]);
        let _ = m.spmm(&b);
        let mut out = Mat::default();
        m.spmm_t_into(&b, &mut out);
        assert!(spmm_ops_performed() - before >= 3);
    }
}
