//! Compressed sparse row matrices and the threaded sparse×dense product that
//! implements every graph-convolution step in the workspace.

use gcon_linalg::Mat;
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse row format.
///
/// Used for the normalized adjacency `Ã` so that one propagation step
/// `Z ← Ã Z` costs O(nnz · d) instead of O(n² · d). The paper never needs the
/// dense `R_m` (Eq. 9) explicitly — `gcon-core` carries `Z_m = R_m X` through
/// the recursion `Z_m = (1-α) Ã Z_{m-1} + α X`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from per-row `(column, value)` pairs. Pairs within
    /// a row need not be sorted; duplicates are summed.
    pub fn from_row_entries(rows: usize, cols: usize, row_entries: Vec<Vec<(u32, f64)>>) -> Self {
        assert_eq!(row_entries.len(), rows, "from_row_entries: row count mismatch");
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for mut entries in row_entries {
            entries.sort_unstable_by_key(|&(j, _)| j);
            let mut last: Option<u32> = None;
            for (j, v) in entries {
                assert!((j as usize) < cols, "from_row_entries: column {j} out of range");
                if last == Some(j) {
                    *values.last_mut().unwrap() += v;
                } else {
                    indices.push(j);
                    values.push(v);
                    last = Some(j);
                }
            }
            indptr.push(indices.len());
        }
        Self { rows, cols, indptr, indices, values }
    }

    /// The `n × n` identity in CSR form.
    pub fn eye(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(columns, values)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.indptr[i], self.indptr[i + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Element lookup (O(log nnz_row)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Sum of each row.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).1.iter().sum()).collect()
    }

    /// Sum of each column.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for (&j, &v) in self.indices.iter().zip(&self.values) {
            out[j as usize] += v;
        }
        out
    }

    /// Dense `self · x` for a vector.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter().zip(vals).map(|(&j, &v)| v * x[j as usize]).sum()
            })
            .collect()
    }

    /// Dense `self · B` (sparse × dense), parallelized over row blocks on
    /// the shared `gcon-runtime` pool.
    pub fn spmm(&self, b: &Mat) -> Mat {
        // `spmm_into` shapes and zero-fills; starting empty avoids a
        // redundant full-size zero write.
        let mut out = Mat::default();
        self.spmm_into(b, &mut out);
        out
    }

    /// Dense `self · B` written into `out`, which is reshaped (reusing its
    /// backing buffer when capacity allows) to `self.rows() × b.cols()`.
    ///
    /// This is the hot kernel of every propagation step; the `_into` form
    /// lets the APPR recursion ping-pong between two long-lived buffers
    /// instead of allocating a fresh matrix per step.
    pub fn spmm_into(&self, b: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, b.rows(), "spmm: dimension mismatch");
        let d = b.cols();
        out.reset_to_zeros(self.rows, d);
        let work = self.nnz() * d;
        gcon_runtime::parallel_rows(out.as_mut_slice(), self.rows, d, work, |block, start, end| {
            self.spmm_block(b, block, start, end);
        });
    }

    fn spmm_block(&self, b: &Mat, out: &mut [f64], start: usize, end: usize) {
        let d = b.cols();
        for i in start..end {
            let (cols, vals) = self.row(i);
            let orow = &mut out[(i - start) * d..(i - start + 1) * d];
            for (&j, &v) in cols.iter().zip(vals) {
                let brow = b.row(j as usize);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += v * bv;
                }
            }
        }
    }

    /// Converts to a dense matrix (small graphs / tests only).
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                m.set(i, j as usize, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        Csr::from_row_entries(
            3,
            3,
            vec![vec![(2, 2.0), (0, 1.0)], vec![], vec![(0, 3.0), (1, 4.0)]],
        )
    }

    #[test]
    fn build_sorts_and_dedups() {
        let m = Csr::from_row_entries(1, 3, vec![vec![(2, 1.0), (0, 1.0), (2, 3.0)]]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn row_and_col_sums() {
        let m = sample();
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
        assert_eq!(m.col_sums(), vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        assert_eq!(m.spmv(&[1.0, 2.0, 3.0]), vec![7.0, 0.0, 11.0]);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        // random sparse 40x40, dense 40x17
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); 40];
        for row in entries.iter_mut() {
            for j in 0..40u32 {
                if rng.gen::<f64>() < 0.15 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(40, 40, entries);
        let b = Mat::uniform(40, 17, 1.0, &mut rng);
        let fast = sp.spmm(&b);
        let slow = gcon_linalg::ops::matmul(&sp.to_dense(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn spmm_parallel_path_matches_dense() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let n = 300;
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for row in entries.iter_mut() {
            for j in 0..n as u32 {
                if rng.gen::<f64>() < 0.05 {
                    row.push((j, rng.gen_range(-1.0..1.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(n, n, entries);
        let b = Mat::uniform(n, 64, 1.0, &mut rng);
        let fast = sp.spmm(&b);
        let slow = gcon_linalg::ops::matmul(&sp.to_dense(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn identity_spmm_is_neutral() {
        let b = Mat::from_fn(5, 3, |i, j| (i * 3 + j) as f64);
        let i5 = Csr::eye(5);
        assert_eq!(i5.spmm(&b), b);
    }

    #[test]
    fn to_dense_roundtrip_values() {
        let m = sample().to_dense();
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }
}
