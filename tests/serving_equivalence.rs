//! Serving-layer equivalence suite: `gcon-serve` must be a *bitwise* drop-in
//! for the `gcon-core::infer` entry points.
//!
//! Pinned here:
//! - **Store ≡ entry points.** For every node and both modes, served logits
//!   and predictions equal `public_logits`/`private_logits` (and their
//!   `_predict` argmaxes) bit for bit.
//! - **Batched ≡ sequential.** Any batch size, order, or multiplicity —
//!   including micro-batched windows formed under real concurrency —
//!   reproduces the single-query answers exactly (proptested over random
//!   query mixes).
//! - **Thread-count and tier invariance, per dtype.** The full serving
//!   fingerprint (train → build f64 **and** f32 stores → mixed
//!   direct/batched queries) is byte-identical across
//!   `GCON_THREADS ∈ {1, 2, 4}` and every kernel dispatch tier the host CPU
//!   supports, via the same subprocess-matrix technique as
//!   `runtime_equivalence.rs`. Because the fingerprint interleaves both
//!   store dtypes, one matrix pins the dtype × tier × thread-count cube —
//!   and it extends past generation 0: a fixed `CsrDelta` is applied
//!   through `DynamicServingModel`, and the refreshed generation's store
//!   bits and staleness certificate join the fingerprint — as does a
//!   **post-burst** generation: a concurrent edit burst coalesced by
//!   `DeltaCoalescer` into one forward-push `∞` refresh on a second,
//!   `Infinite`-step trained model, pinning the push solver's iterate,
//!   certificate, and cumulative-bound bits across the same cube.
//! - **f32 store contract.** The quantized store's logits stay within
//!   `F32_STORE_LOGIT_TOL` of the f64 entry points and its hard
//!   predictions agree (the exactness tests pin their store to f64
//!   explicitly, so this suite passes under any `GCON_STORE_DTYPE`).

use gcon::core::infer::{private_logits, private_predict, public_logits, public_predict};
use gcon::core::train::train_gcon;
use gcon::core::{GconConfig, PropagationStep, TrainedGcon};
use gcon::core::{InfRefreshKind, PprSolver};
use gcon::graph::generators::{sbm_homophily, SbmConfig};
use gcon::graph::CsrDelta;
use gcon::graph::Graph;
use gcon::linalg::Mat;
use gcon::serve::{
    BatchConfig, BatchQueue, CoalesceConfig, DeltaCoalescer, DynamicServingModel, ServingMode,
    ServingModel, StoreDtype, F32_STORE_LOGIT_TOL,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use std::time::Duration;

/// One deterministic trained model per test process (kernels are bitwise
/// reproducible across threads/tiers, so every process trains the same one).
fn trained() -> &'static (TrainedGcon, Graph, Mat) {
    static MODEL: OnceLock<(TrainedGcon, Graph, Mat)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(2024);
        let cfg = SbmConfig {
            n: 60,
            num_edges: 180,
            num_classes: 3,
            homophily: 0.85,
            degree_exponent: 2.5,
        };
        let (graph, labels) = sbm_homophily(&cfg, &mut rng);
        let x = Mat::from_fn(60, 10, |i, j| {
            (if j % 3 == labels[i] { 1.4 } else { 0.0 })
                + 0.35 * (((i * 17 + j * 3) % 19) as f64 / 19.0 - 0.5)
        });
        let train_idx: Vec<usize> = (0..60).step_by(2).collect();
        let config = GconConfig {
            encoder: gcon::core::encoder::EncoderConfig {
                hidden: 12,
                d1: 6,
                epochs: 50,
                lr: 0.02,
                weight_decay: 1e-5,
            },
            steps: vec![PropagationStep::Finite(0), PropagationStep::Finite(2)],
            optimizer: gcon::core::model::OptimizerConfig {
                lr: 0.05,
                max_iters: 300,
                grad_tol: 1e-7,
            },
            ..Default::default()
        };
        let model = train_gcon(&config, &graph, &x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng);
        (model, graph, x)
    })
}

/// A second trained model with an `Infinite` propagation step and the
/// forward-push refresh solver, on the same graph/features as [`trained`] —
/// the subject of the post-burst fingerprint section (push state only
/// exists on `∞` chains).
fn trained_inf() -> &'static TrainedGcon {
    static MODEL: OnceLock<TrainedGcon> = OnceLock::new();
    MODEL.get_or_init(|| {
        let (_, graph, x) = trained();
        let mut rng = StdRng::seed_from_u64(4096);
        let labels: Vec<usize> = (0..graph.num_nodes()).map(|i| i % 3).collect();
        let train_idx: Vec<usize> = (0..graph.num_nodes()).step_by(3).collect();
        let config = GconConfig {
            encoder: gcon::core::encoder::EncoderConfig {
                hidden: 10,
                d1: 5,
                epochs: 30,
                lr: 0.02,
                weight_decay: 1e-5,
            },
            steps: vec![PropagationStep::Finite(0), PropagationStep::Infinite],
            ppr_solver: PprSolver::Push,
            optimizer: gcon::core::model::OptimizerConfig {
                lr: 0.05,
                max_iters: 150,
                grad_tol: 1e-7,
            },
            ..Default::default()
        };
        train_gcon(&config, graph, x, &labels, &train_idx, 3, 4.0, 1e-3, &mut rng)
    })
}

#[test]
fn serving_matches_infer_entry_points_bitwise_for_every_node() {
    let (model, graph, x) = trained();
    for (mode, logits, preds) in [
        (ServingMode::Public, public_logits(model, graph, x), public_predict(model, graph, x)),
        (ServingMode::Private, private_logits(model, graph, x), private_predict(model, graph, x)),
    ] {
        // The bitwise claim is the f64 store's contract — pinned explicitly
        // so this test means the same thing under any GCON_STORE_DTYPE.
        let serving = ServingModel::build_with_dtype(model, graph, x, mode, StoreDtype::F64);
        let mut session = serving.session();
        let mut out = Vec::new();
        for (node, &expected) in preds.iter().enumerate() {
            session.logits_into(node, &mut out);
            assert_eq!(out.as_slice(), logits.row(node), "{} logits, node {node}", mode.name());
            assert_eq!(session.predict(node), expected, "{} argmax, node {node}", mode.name());
        }
        assert_eq!(serving.predict_all(), preds, "{} predict_all", mode.name());
    }
}

#[test]
fn micro_batched_concurrent_queries_match_infer_bitwise() {
    let (model, graph, x) = trained();
    let reference = public_logits(model, graph, x);
    let serving =
        ServingModel::build_with_dtype(model, graph, x, ServingMode::Public, StoreDtype::F64);
    let queue = BatchQueue::new(
        &serving,
        BatchConfig { max_batch: 16, max_wait: Duration::from_millis(2) },
    );
    let n = serving.num_nodes();
    std::thread::scope(|scope| {
        for t in 0..6 {
            let queue = &queue;
            let reference = &reference;
            scope.spawn(move || {
                let mut out = Vec::new();
                for q in 0..30 {
                    let node = (t * 23 + q * 5) % n;
                    queue.query_into(node, &mut out);
                    assert_eq!(
                        out.as_slice(),
                        reference.row(node),
                        "thread {t} query {q} node {node}"
                    );
                }
            });
        }
    });
    let stats = queue.stats();
    assert_eq!(stats.requests, 180);
    assert!(stats.largest_batch <= 16);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random query mixes: any sequence of nodes, partitioned into batches
    /// of any size, answers bitwise like the full-matrix entry point —
    /// rows are position-independent in every kernel on the path.
    #[test]
    fn random_query_mixes_are_batch_invariant(
        seed in 0u64..1000,
        len in 1usize..70,
        split in 1usize..20,
    ) {
        let (model, graph, x) = trained();
        let reference = public_logits(model, graph, x);
        let serving =
            ServingModel::build_with_dtype(model, graph, x, ServingMode::Public, StoreDtype::F64);
        let n = serving.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let nodes: Vec<usize> = (0..len).map(|_| rng.gen_range(0..n)).collect();
        let mut session = serving.session();
        // Batched in `split`-sized windows…
        for chunk in nodes.chunks(split) {
            let logits = session.logits_batch(chunk);
            for (r, &node) in chunk.iter().enumerate() {
                prop_assert_eq!(logits.row(r), reference.row(node), "node {}", node);
            }
        }
        // …and as one window, and per-query: all identical.
        let all = session.logits_batch(&nodes);
        for (r, &node) in nodes.iter().enumerate() {
            prop_assert_eq!(all.row(r), reference.row(node), "node {}", node);
        }
    }

    /// f64 → f32 store quantization round-trip bound: each element of the
    /// down-converted matrix, widened back, is within one f32 ulp of the
    /// original (relative error ≤ 2⁻²⁴ over the magnitudes a propagated
    /// store contains) — the per-element premise of the
    /// `F32_STORE_LOGIT_TOL` drift argument. Exactly-representable values
    /// survive bit-for-bit.
    #[test]
    fn f32_quantization_roundtrip_is_within_one_ulp(
        seed in 0u64..10_000,
        rows in 1usize..12,
        cols in 1usize..12,
        scale in 1e-6f64..1e6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m: Mat = Mat::uniform(rows, cols, scale, &mut rng);
        let q = m.convert::<f32>();
        let back = q.convert::<f64>();
        for (orig, round) in m.as_slice().iter().zip(back.as_slice()) {
            let err = (orig - round).abs();
            prop_assert!(
                err <= orig.abs() * (1.0 / (1u64 << 24) as f64),
                "quantization error {} for value {} exceeds 2^-24 relative", err, orig
            );
        }
        // Exactly f32-representable inputs round-trip bitwise.
        let exact = Mat::from_fn(rows, cols, |i, j| (i as f64) - 0.5 * j as f64);
        prop_assert_eq!(exact.convert::<f32>().convert::<f64>(), exact);
    }
}

/// Serialized bitwise fingerprint of the whole serving path: train, build
/// the f64 **and** f32 stores of both modes, answer a fixed mixed workload
/// directly and through the micro-batcher, then apply a fixed graph delta
/// through `DynamicServingModel` and fingerprint the **post-delta
/// generation** (store bits, staleness certificate, workload) in both
/// dtypes — so the incremental refresh and row-patch paths are pinned by
/// the same matrix as the frozen store. The f32 sections fingerprint the
/// raw quantized store bits plus the widened query logits, so a fingerprint
/// match across the subprocess matrix pins bitwise determinism *within each
/// dtype* — the per-dtype contract; no bit relation across dtypes is
/// claimed anywhere.
fn serving_fingerprint() -> Vec<u8> {
    let (model, graph, x) = trained();
    let mut bytes = Vec::new();
    fn push(bytes: &mut Vec<u8>, values: &[f64]) {
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fn query_workload(bytes: &mut Vec<u8>, serving: &ServingModel) {
        let mut session = serving.session();
        let nodes: Vec<usize> = (0..serving.num_nodes()).map(|i| (i * 13) % 60).collect();
        push(bytes, session.logits_batch(&nodes).as_slice());
        let queue = BatchQueue::new(
            serving,
            BatchConfig { max_batch: 8, max_wait: Duration::from_micros(100) },
        );
        let mut out = Vec::new();
        for node in [0usize, 7, 59, 7, 31] {
            queue.query_into(node, &mut out);
            push(bytes, &out);
        }
    }
    for mode in [ServingMode::Public, ServingMode::Private] {
        let serving = ServingModel::build_with_dtype(model, graph, x, mode, StoreDtype::F64);
        push(&mut bytes, serving.store_f64().unwrap().as_slice());
        query_workload(&mut bytes, &serving);

        let serving32 = ServingModel::build_with_dtype(model, graph, x, mode, StoreDtype::F32);
        for v in serving32.store_f32().unwrap().as_slice() {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        query_workload(&mut bytes, &serving32);

        // Post-delta generation: the dynamic store after a fixed mutation
        // batch (two edge toggles + one onboarded node) must be just as
        // deterministic as the frozen one — the incremental refresh and row
        // patch paths join the dtype × tier × thread-count cube here.
        for dtype in [StoreDtype::F64, StoreDtype::F32] {
            let dynamic =
                DynamicServingModel::build_with_dtype(model, graph.clone(), x, mode, dtype);
            let mut delta = CsrDelta::new();
            for &(u, v) in &[(3u32, 41u32), (10u32, 50u32)] {
                if graph.neighbors(u).contains(&v) {
                    delta.remove_edge(u, v);
                } else {
                    delta.insert_edge(u, v);
                }
            }
            let n0 = graph.num_nodes() as u32;
            delta.add_nodes(1).insert_edge(n0, 7);
            let feats = Mat::from_fn(1, x.cols(), |_, j| 0.3 + 0.1 * j as f64);
            let outcome = dynamic.apply_delta(&delta, Some(&feats));
            bytes.extend_from_slice(&outcome.generation.to_le_bytes());
            push(&mut bytes, &[outcome.staleness_bound]);
            let snap = dynamic.snapshot();
            match dtype {
                StoreDtype::F64 => {
                    push(&mut bytes, snap.model().store_f64().unwrap().as_slice());
                }
                StoreDtype::F32 => {
                    for v in snap.model().store_f32().unwrap().as_slice() {
                        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
            query_workload(&mut bytes, snap.model());
        }
    }

    // Post-burst generation on the ∞-scale push model: four distinct edge
    // toggles submitted concurrently coalesce into exactly one window
    // (`max_pending = 4` + wait-until-full), hence one forward-push refresh
    // and one published generation. The merged graph, touched set, push
    // sweep order (sorted worklist), certificate, and cumulative bound are
    // all arrival-order independent, so the post-burst state joins the
    // dtype × tier × thread-count cube bit for bit.
    let (_, graph, x) = trained();
    let model_inf = trained_inf();
    for dtype in [StoreDtype::F64, StoreDtype::F32] {
        let dynamic = DynamicServingModel::build_with_dtype(
            model_inf,
            graph.clone(),
            x,
            ServingMode::Public,
            dtype,
        );
        let coalescer = DeltaCoalescer::new(
            &dynamic,
            CoalesceConfig { max_pending: 4, max_delay: Duration::MAX },
        );
        let outcomes = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for &(u, v) in &[(5u32, 17u32), (12u32, 44u32), (23u32, 31u32), (40u32, 52u32)] {
                let coalescer = &coalescer;
                let outcomes = &outcomes;
                scope.spawn(move || {
                    let mut delta = CsrDelta::new();
                    if graph.neighbors(u).contains(&v) {
                        delta.remove_edge(u, v);
                    } else {
                        delta.insert_edge(u, v);
                    }
                    // Submit before locking: the receiver of `.push(..)` is
                    // evaluated first, so inlining the blocking submit into
                    // the push argument would hold the mutex across it and
                    // starve the window of the other submitters.
                    let outcome = coalescer.submit(delta, None);
                    outcomes.lock().unwrap().push(outcome);
                });
            }
        });
        let outcomes = outcomes.into_inner().unwrap();
        assert_eq!(coalescer.stats().windows, 1, "burst must coalesce into one window");
        let outcome = &outcomes[0];
        assert_eq!(outcome.generation, 1, "one burst, one generation");
        // The solver knob may be overridden process-wide; when it is not
        // (or is forced to push), the burst must have refreshed by push.
        match std::env::var("GCON_REFRESH_SOLVER").as_deref() {
            Err(_) | Ok("") | Ok("push") => {
                assert_eq!(outcome.inf_solver, Some(InfRefreshKind::Push))
            }
            _ => assert!(outcome.inf_solver.is_some()),
        }
        bytes.extend_from_slice(&outcome.generation.to_le_bytes());
        push(&mut bytes, &[outcome.staleness_bound, outcome.cumulative_staleness_bound]);
        bytes.push(outcome.inf_solver.map_or(0, |s| s as u8 + 1));
        let snap = dynamic.snapshot();
        match dtype {
            StoreDtype::F64 => push(&mut bytes, snap.model().store_f64().unwrap().as_slice()),
            StoreDtype::F32 => {
                for v in snap.model().store_f32().unwrap().as_slice() {
                    bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
        query_workload(&mut bytes, snap.model());
    }
    bytes
}

/// **Acceptance pin:** the serving fingerprint — which interleaves the f64
/// and f32 store paths — is byte-identical across the
/// `GCON_KERNEL_TIER × GCON_THREADS ∈ {1,2,4}` matrix, i.e. the full
/// dtype × tier × thread-count cube is deterministic within each dtype. Pool width and tier
/// are latched per process, so the test re-executes itself as a subprocess
/// per cell (same technique as `runtime_equivalence.rs`); absent tiers are
/// skipped, not failed.
#[test]
fn serving_byte_identical_across_thread_counts_and_tiers() {
    if let Ok(path) = std::env::var("GCON_SERVE_FINGERPRINT_OUT") {
        std::fs::write(path, serving_fingerprint()).expect("fingerprint write failed");
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let mut outputs = Vec::new();
    for &tier in gcon::runtime::available_tiers() {
        for threads in ["1", "2", "4"] {
            let path = std::env::temp_dir()
                .join(format!("gcon-serve-fp-{}-{tier}-t{threads}", std::process::id()));
            let status = std::process::Command::new(&exe)
                .args([
                    "serving_byte_identical_across_thread_counts_and_tiers",
                    "--exact",
                    "--test-threads=1",
                ])
                .env("GCON_THREADS", threads)
                .env("GCON_KERNEL_TIER", tier.name())
                .env("GCON_SERVE_FINGERPRINT_OUT", &path)
                .status()
                .expect("failed to respawn test binary");
            assert!(status.success(), "tier={tier} GCON_THREADS={threads} child failed");
            let data = std::fs::read(&path).expect("fingerprint read failed");
            assert!(!data.is_empty(), "tier={tier} GCON_THREADS={threads} empty fingerprint");
            let _ = std::fs::remove_file(&path);
            outputs.push((tier, threads, data));
        }
    }
    let (t0, w0, reference) = &outputs[0];
    for (tier, threads, data) in &outputs[1..] {
        assert!(
            data == reference,
            "serving results differ between ({t0}, GCON_THREADS={w0}) and \
             ({tier}, GCON_THREADS={threads})"
        );
    }
}

/// The f32 store's accuracy contract on this (larger-than-unit-test) model:
/// every logit stays within `F32_STORE_LOGIT_TOL` of the f64 entry points
/// for both modes, and hard predictions agree node-for-node.
#[test]
fn f32_store_stays_within_drift_contract_of_entry_points() {
    let (model, graph, x) = trained();
    for (mode, logits, preds) in [
        (ServingMode::Public, public_logits(model, graph, x), public_predict(model, graph, x)),
        (ServingMode::Private, private_logits(model, graph, x), private_predict(model, graph, x)),
    ] {
        let serving = ServingModel::build_with_dtype(model, graph, x, mode, StoreDtype::F32);
        assert_eq!(serving.store_dtype(), StoreDtype::F32);
        let mut session = serving.session();
        let mut out = Vec::new();
        let mut max_drift: f64 = 0.0;
        for (node, &expected) in preds.iter().enumerate() {
            session.logits_into(node, &mut out);
            for (a, b) in out.iter().zip(logits.row(node)) {
                max_drift = max_drift.max((a - b).abs());
            }
            assert_eq!(session.predict(node), expected, "{} argmax, node {node}", mode.name());
        }
        assert!(
            max_drift < F32_STORE_LOGIT_TOL,
            "{}: f32 store drift {max_drift:e} exceeds {F32_STORE_LOGIT_TOL:e}",
            mode.name()
        );
        assert_eq!(serving.predict_all(), preds, "{} predict_all", mode.name());
    }
}

/// In-process tier sweep: pinning each available tier, the served answers
/// still equal the entry points computed under that same tier, bitwise.
#[test]
fn serving_matches_infer_at_every_available_tier() {
    let (model, graph, x) = trained();
    gcon::runtime::for_each_available_tier(|tier| {
        let reference = public_logits(model, graph, x);
        let serving =
            ServingModel::build_with_dtype(model, graph, x, ServingMode::Public, StoreDtype::F64);
        let mut session = serving.session();
        let nodes: Vec<usize> = (0..serving.num_nodes()).rev().collect();
        let logits = session.logits_batch(&nodes);
        for (r, &node) in nodes.iter().enumerate() {
            assert_eq!(logits.row(r), reference.row(node), "tier {tier}, node {node}");
        }
    });
}
