//! Decode robustness under hostile bytes, for every binary surface the
//! repo persists or ships: trained-model artifacts, serving-store
//! artifacts (format v3), and wire frames.
//!
//! The contract under test is **fail-closed decoding**: truncation is
//! always a typed error, bit flips and random byte soup may be rejected or
//! (rarely) decode to a valid value, but must never panic and never
//! trigger an allocation beyond the bytes actually presented. These
//! property tests drive randomized corruption; the exhaustive
//! every-prefix/every-byte sweeps live next to the codecs' unit tests.

use gcon::core::serialize::{self, PersistedStore, StoreArtifact};
use gcon::core::train::train_gcon;
use gcon::core::{GconConfig, TrainedGcon};
use gcon::linalg::Mat;
use gcon::serve::wire::{Request, Response, PROTO_VERSION};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One tiny trained model per process, encoded once: the model-artifact
/// corpus for the corruption tests.
fn model_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(11);
        let graph = gcon::graph::generators::erdos_renyi_gnm(24, 48, &mut rng);
        let x = Mat::from_fn(24, 6, |i, j| ((i * 7 + j * 5) % 13) as f64 / 13.0 - 0.4);
        let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
        let train_idx: Vec<usize> = (0..24).step_by(2).collect();
        let mut config = GconConfig::default();
        config.encoder.epochs = 5;
        config.optimizer.max_iters = 30;
        let model = train_gcon(&config, &graph, &x, &labels, &train_idx, 2, 3.0, 1e-3, &mut rng);
        serialize::to_bytes(&model).to_vec()
    })
}

/// A small store artifact (f64, f32, and a row-range **slice** — the
/// shard-handoff payload the fleet coordinator ships in `ShardAssign`
/// frames) encoded once.
fn store_bytes() -> &'static [Vec<u8>; 3] {
    static BYTES: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    BYTES.get_or_init(|| {
        let store = Mat::from_fn(9, 4, |i, j| (i as f64 - 3.5) * 0.25 + j as f64);
        let theta = Mat::from_fn(4, 3, |i, j| 1.0 / (1.0 + (i * 3 + j) as f64));
        let f64_store = PersistedStore {
            mode_tag: 1,
            data: StoreArtifact::F64 { store: store.clone(), theta: theta.clone() },
        };
        let f64_bytes = serialize::store_to_bytes(&f64_store);
        let slice_bytes = serialize::store_to_bytes(&f64_store.slice_rows(2, 7));
        let store32 = Mat::<f32>::from_fn(9, 4, |i, j| (i as f32) * 0.5 - j as f32);
        let theta32 = Mat::<f32>::from_fn(4, 3, |i, j| ((i + j) as f32).sin());
        let f32_bytes = serialize::store_to_bytes(&PersistedStore {
            mode_tag: 0,
            data: StoreArtifact::F32 { store: store32, theta: theta32 },
        });
        [f64_bytes.to_vec(), f32_bytes.to_vec(), slice_bytes.to_vec()]
    })
}

/// Every valid wire frame body shape, as a corruption corpus.
fn wire_bodies() -> Vec<Vec<u8>> {
    let mut bodies: Vec<Vec<u8>> = vec![
        Request::Hello { proto: PROTO_VERSION }.encode(),
        Request::Query { token: 77, node: 5 }.encode(),
        Request::Bulk { token: 77, nodes: vec![0, 3, 9] }.encode(),
        Request::Stats { token: 77 }.encode(),
        Request::Health.encode(),
        Request::Bye.encode(),
        // Fleet shard frames (proto v2): the assign payload carries an
        // embedded artifact blob, the query carries global node ids.
        Request::ShardAssign { token: 77, shard_id: 1, row_start: 4, artifact: vec![9; 24] }
            .encode(),
        Request::ShardQuery { token: 77, nodes: vec![4, 5, 6] }.encode(),
        Request::ShardFingerprint { token: 77, chunk_rows: 64 }.encode(),
    ];
    bodies.push(Response::Logits { values: vec![0.25, -3.5] }.encode());
    bodies.push(Response::BulkChunk { start: 2, cols: 2, values: vec![1.0, 2.0] }.encode());
    bodies.push(Response::BulkDone { total_rows: 3 }.encode());
    bodies.push(Response::ShardReady { shard_id: 1, rows: 5 }.encode());
    bodies.push(Response::ShardLogits { start: 1, cols: 2, values: vec![0.5, -1.5] }.encode());
    bodies.push(
        Response::ShardFingerprintReply { chunk_rows: 64, fingerprints: vec![7, 8] }.encode(),
    );
    bodies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a model artifact anywhere is a typed decode error —
    /// never a panic, never an `Ok` on partial data.
    #[test]
    fn truncated_model_artifact_is_always_err(seed: u64) {
        let bytes = model_bytes();
        let cut = (seed % bytes.len() as u64) as usize;
        prop_assert!(serialize::from_bytes(&bytes[..cut]).is_err(), "prefix of {cut} bytes");
    }

    /// Same for store artifacts, both dtypes.
    #[test]
    fn truncated_store_artifact_is_always_err(seed: u64) {
        for bytes in store_bytes() {
            let cut = (seed % bytes.len() as u64) as usize;
            prop_assert!(
                serialize::store_from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes"
            );
        }
    }

    /// Random bit flips in a model artifact never panic; when the decoder
    /// does accept (flips confined to payload values), the result is a
    /// well-formed model that re-encodes without panicking.
    #[test]
    fn bit_flipped_model_artifact_never_panics(seed: u64, byte: u64, bit in 0u32..8) {
        let mut bytes = model_bytes().to_vec();
        let i = (byte % bytes.len() as u64) as usize;
        bytes[i] ^= 1 << bit;
        // A second flip at a seed-derived offset, to hit multi-field damage.
        let j = (seed % bytes.len() as u64) as usize;
        bytes[j] ^= 0x80;
        if let Ok(model) = serialize::from_bytes(&bytes) {
            let _: TrainedGcon = model;
        }
    }

    /// Random bit flips in store artifacts never panic, and an accepted
    /// decode still satisfies the shape invariant (`store.cols == theta.rows`
    /// is re-checked downstream; here the artifact-level shape is coherent).
    #[test]
    fn bit_flipped_store_artifact_never_panics(byte: u64, bit in 0u32..8) {
        for bytes in store_bytes() {
            let mut bytes = bytes.clone();
            let i = (byte % bytes.len() as u64) as usize;
            bytes[i] ^= 1 << bit;
            if let Ok(persisted) = serialize::store_from_bytes(&bytes) {
                let (rows, d, c) = persisted.data.shape();
                prop_assert!(rows > 0 && d > 0 && c > 0);
            }
        }
    }

    /// Random byte soup is rejected by both artifact decoders (it cannot
    /// even present the magic), with a typed error.
    #[test]
    fn random_bytes_are_rejected_by_artifact_decoders(
        soup in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        prop_assert!(serialize::from_bytes(&soup).is_err());
        prop_assert!(serialize::store_from_bytes(&soup).is_err());
    }

    /// Wire frames: truncation of any valid body is an error; a bit flip
    /// never panics; and any request the decoder does accept re-encodes to
    /// exactly the bytes it was decoded from (the encoding is canonical).
    #[test]
    fn corrupted_wire_frames_fail_closed(seed: u64, bit in 0u32..8) {
        for body in wire_bodies() {
            let cut = (seed % body.len() as u64) as usize;
            prop_assert!(Request::decode(&body[..cut]).is_err());
            prop_assert!(Response::decode(&body[..cut]).is_err());

            let mut flipped = body.clone();
            let i = (seed % body.len() as u64) as usize;
            flipped[i] ^= 1 << bit;
            if let Ok(request) = Request::decode(&flipped) {
                prop_assert_eq!(request.encode(), flipped, "request encoding must be canonical");
            }
            let _ = Response::decode(&flipped); // must not panic
        }
    }

    /// Random byte soup against the wire decoders: never a panic, and any
    /// accepted request re-encodes canonically.
    #[test]
    fn random_bytes_never_panic_wire_decoders(
        soup in proptest::collection::vec(0u8..=255, 1..64),
    ) {
        if let Ok(request) = Request::decode(&soup) {
            prop_assert_eq!(request.encode(), soup.clone(), "request encoding must be canonical");
        }
        let _ = Response::decode(&soup);
    }
}
