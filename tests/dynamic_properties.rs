//! Property tests for the dynamic-graph substrate: `CsrDelta` application
//! against from-scratch normalization rebuilds, and incremental
//! `ApprChain` refreshes against from-scratch propagation — over random
//! graphs and random mutation sequences.
//!
//! The contracts under test (see `crates/graph/src/delta.rs` and
//! `crates/core/src/refresh.rs`):
//!
//! - A `CsrDelta` patch of `Ã` is **bitwise** equal to rebuilding
//!   `row_stochastic` from the mutated edge list, after every step of any
//!   insert/remove/onboard sequence.
//! - After any delta sequence, the refreshed chain's concatenation matches
//!   the from-scratch `concat_features` on the final graph — bitwise for
//!   finite scales, within the certified staleness bounds when an `∞`
//!   scale is present.
//! - `CsrDelta::merge` is **sequential application**: merging any delta
//!   sequence into one delta and applying it yields the same graph and the
//!   bitwise-identical `Ã` as applying the deltas one by one (including
//!   insert-then-remove cancellation and cross-delta onboarding).
//! - The forward-push `∞` refresh (`PprSolver::Push`) honors the same
//!   certified staleness contract as the global solvers, and a coalesced
//!   (merged) burst refresh agrees with sequential refreshes within the
//!   sum of the two final certificates.

use gcon::core::propagation::concat_features_with_solver;
use gcon::core::{ApprChain, PprSolver, PropagationStep};
use gcon::graph::delta::matches_rebuild;
use gcon::graph::normalize::row_stochastic;
use gcon::graph::{CsrDelta, Graph};
use gcon::linalg::Mat;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random simple graph on `n` nodes (plus a spine so it is connected
/// enough to propagate over).
fn random_graph(n: usize, extra_edges: usize, rng: &mut StdRng) -> Graph {
    let mut g = Graph::empty(n);
    for u in 1..n as u32 {
        g.add_edge(u - 1, u);
    }
    for _ in 0..extra_edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !g.neighbors(u).contains(&v) {
            g.add_edge(u, v);
        }
    }
    g
}

/// One random mutation against the current graph state: an edge toggle
/// (remove if present, insert otherwise) or, occasionally, onboarding a
/// node wired to one random existing node. Returns the delta, how many
/// feature rows it needs, and the toggled edge when the op was an edge op.
fn random_delta(g: &Graph, rng: &mut StdRng) -> (CsrDelta, usize, Option<(u32, u32)>) {
    let n = g.num_nodes() as u32;
    let mut delta = CsrDelta::new();
    if rng.gen::<f64>() < 0.25 {
        let anchor = rng.gen_range(0..n);
        delta.add_nodes(1).insert_edge(n, anchor);
        (delta, 1, None)
    } else {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n);
        if v == u {
            v = (v + 1) % n;
        }
        if g.neighbors(u).contains(&v) {
            delta.remove_edge(u, v);
        } else {
            delta.insert_edge(u, v);
        }
        (delta, 0, Some((u, v)))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every step of a random mutation sequence, the patched `Ã` is
    /// bitwise the `row_stochastic` rebuild of the mutated graph, and the
    /// touched set names every row whose weights could have changed.
    #[test]
    fn delta_application_is_bitwise_rebuild(
        seed in 0u64..500,
        n in 4usize..32,
        extra in 0usize..40,
        ops in 1usize..10,
        p in 0.1f64..0.5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = random_graph(n, extra, &mut rng);
        let mut a_tilde = row_stochastic(&g, p);
        for step in 0..ops {
            let (delta, _, edge) = random_delta(&g, &mut rng);
            let before = g.num_nodes();
            let result = delta.apply(&mut g, &a_tilde, p);
            a_tilde = result.a_tilde;
            prop_assert!(
                matches_rebuild(&a_tilde, &g, p),
                "step {} diverged from the from-scratch rebuild", step
            );
            // Every mutated endpoint (and every onboarded node) is in the
            // touched set — the rows the refresh layer re-derives.
            // `random_delta` only emits effective ops, so nothing is a no-op.
            if let Some((u, v)) = edge {
                prop_assert!(result.touched.contains(&u) && result.touched.contains(&v));
            }
            for new in before as u32..g.num_nodes() as u32 {
                prop_assert!(result.touched.contains(&new));
            }
        }
    }

    /// After a random delta sequence, the incrementally refreshed chain
    /// matches from-scratch `concat_features` on the final graph: bitwise
    /// for finite scales; within the summed staleness certificates when an
    /// `∞` scale is present (ours, plus the from-scratch power iterate's
    /// own `(1−α)·tol/α` residual — `tol = 1e-10`, the solver's internal
    /// `PPR_TOL`).
    #[test]
    fn refreshed_chain_matches_scratch_propagation(
        seed in 0u64..500,
        n in 6usize..24,
        extra in 0usize..30,
        ops in 1usize..6,
        alpha in 0.1f64..0.6,
        with_inf in 0usize..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let mut g = random_graph(n, extra, &mut rng);
        let p = 0.5;
        let mut a_tilde = row_stochastic(&g, p);
        let mut steps = vec![PropagationStep::Finite(0), PropagationStep::Finite(2)];
        if with_inf == 1 {
            steps.push(PropagationStep::Infinite);
        }
        let d = 4;
        let mut x: Mat = Mat::uniform(n, d, 1.0, &mut rng);
        let mut chain = ApprChain::build(&a_tilde, &x, alpha, &steps, PprSolver::Power);

        for _ in 0..ops {
            let (delta, new_rows, _) = random_delta(&g, &mut rng);
            let result = delta.apply(&mut g, &a_tilde, p);
            a_tilde = result.a_tilde;
            if new_rows > 0 {
                let n_old = x.rows();
                let mut grown = Mat::zeros(n_old + new_rows, d);
                grown.as_mut_slice()[..n_old * d].copy_from_slice(x.as_slice());
                for r in 0..new_rows {
                    for c in 0..d {
                        grown.set(n_old + r, c, rng.gen_range(-1.0..1.0));
                    }
                }
                x = grown;
            }
            chain.refresh(&a_tilde, &x, &result.touched);
        }

        let refreshed = chain.assemble_concat();
        let scratch = concat_features_with_solver(&a_tilde, &x, alpha, &steps, PprSolver::Power);
        prop_assert_eq!(refreshed.shape(), scratch.shape());
        if with_inf == 0 {
            prop_assert!(chain.staleness_bound() == 0.0);
            prop_assert_eq!(
                refreshed.as_slice(), scratch.as_slice(),
                "finite-only refresh must be bitwise"
            );
        } else {
            // Both sides sit within a certificate of the exact limit; the
            // 1/s scaling shrinks the per-element gap accordingly.
            let scratch_residual = (1.0 - alpha) * 1e-10 / alpha;
            let bound =
                (chain.staleness_bound() + scratch_residual) / steps.len() as f64 + 1e-14;
            for (a, b) in refreshed.as_slice().iter().zip(scratch.as_slice()) {
                prop_assert!(
                    (a - b).abs() <= bound,
                    "refresh drifted {:e} > certified {:e}", (a - b).abs(), bound
                );
            }
        }
    }

    /// Merging a random delta sequence into one `CsrDelta` and applying it
    /// once yields the same node count and the **bitwise** same `Ã` as
    /// applying the deltas one by one — insert/remove netting included.
    #[test]
    fn merged_delta_is_bitwise_sequential_application(
        seed in 0u64..500,
        n in 4usize..24,
        extra in 0usize..30,
        ops in 2usize..8,
        p in 0.1f64..0.5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97).wrapping_add(13));
        let g0 = random_graph(n, extra, &mut rng);
        let a0 = row_stochastic(&g0, p);

        // Sequential: evolve graph + Ã one delta at a time, keeping each
        // delta (computed against the live state, as a real writer would).
        let mut g_seq = g0.clone();
        let mut a_seq = a0.clone();
        let mut deltas = Vec::new();
        for _ in 0..ops {
            let (delta, _, _) = random_delta(&g_seq, &mut rng);
            let result = delta.apply(&mut g_seq, &a_seq, p);
            a_seq = result.a_tilde;
            deltas.push(delta);
        }

        // Coalesced: merge the same deltas FIFO, apply once to the origin.
        let mut merged = deltas[0].clone();
        for d in &deltas[1..] {
            merged.merge(d);
        }
        let mut g_merged = g0.clone();
        let result = merged.apply(&mut g_merged, &a0, p);
        prop_assert_eq!(g_merged.num_nodes(), g_seq.num_nodes());
        prop_assert_eq!(
            &result.a_tilde, &a_seq,
            "merged application diverged from sequential"
        );
        prop_assert!(matches_rebuild(&result.a_tilde, &g_merged, p));
    }

    /// The forward-push `∞` refresh stays inside the certified staleness
    /// contract after any random delta sequence: finite scales bitwise,
    /// the `∞` scale within the maintained-residual certificate — exactly
    /// the contract the global solvers honor, at local cost.
    #[test]
    fn push_refresh_stays_within_certified_bound(
        seed in 0u64..500,
        n in 6usize..24,
        extra in 0usize..30,
        ops in 1usize..6,
        alpha in 0.1f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(61).wrapping_add(3));
        let mut g = random_graph(n, extra, &mut rng);
        let p = 0.5;
        let mut a_tilde = row_stochastic(&g, p);
        let steps =
            vec![PropagationStep::Finite(1), PropagationStep::Infinite];
        let d = 4;
        let mut x: Mat = Mat::uniform(n, d, 1.0, &mut rng);
        let mut chain = ApprChain::build(&a_tilde, &x, alpha, &steps, PprSolver::Push);

        let mut saw_push = false;
        for _ in 0..ops {
            let (delta, new_rows, _) = random_delta(&g, &mut rng);
            let result = delta.apply(&mut g, &a_tilde, p);
            a_tilde = result.a_tilde;
            if new_rows > 0 {
                let n_old = x.rows();
                let mut grown = Mat::zeros(n_old + new_rows, d);
                grown.as_mut_slice()[..n_old * d].copy_from_slice(x.as_slice());
                for r in 0..new_rows {
                    for c in 0..d {
                        grown.set(n_old + r, c, rng.gen_range(-1.0..1.0));
                    }
                }
                x = grown;
            }
            let stats = chain.refresh(&a_tilde, &x, &result.touched);
            saw_push |= stats.inf_solver == Some(gcon::core::InfRefreshKind::Push);
        }
        prop_assert!(saw_push, "forced Push solver never reported a push refresh");

        let refreshed = chain.assemble_concat();
        let scratch = concat_features_with_solver(&a_tilde, &x, alpha, &steps, PprSolver::Power);
        let scratch_residual = (1.0 - alpha) * 1e-10 / alpha;
        let bound = (chain.staleness_bound() + scratch_residual) / steps.len() as f64 + 1e-14;
        // Finite block bitwise, ∞ block within the certificate; comparing
        // the whole concatenation against the certified bound covers both
        // (the finite gap is exactly zero).
        let (rows, cols) = refreshed.shape();
        prop_assert_eq!((rows, cols), scratch.shape());
        for r in 0..rows {
            for (c, (a, b)) in refreshed.row(r).iter().zip(scratch.row(r)).enumerate() {
                if c < d {
                    prop_assert_eq!(a, b, "finite block must stay bitwise (row {})", r);
                } else {
                    prop_assert!(
                        (a - b).abs() <= bound,
                        "push refresh drifted {:e} > certified {:e}", (a - b).abs(), bound
                    );
                }
            }
        }
    }

    /// Coalescing contract end to end at the chain level: refreshing once
    /// with the merged delta agrees with refreshing once per delta — finite
    /// scales bitwise, the `∞` scale within the sum of the two final
    /// certificates (both states certify against the same exact limit).
    #[test]
    fn coalesced_burst_refresh_matches_sequential_within_bounds(
        seed in 0u64..500,
        n in 6usize..20,
        extra in 0usize..24,
        ops in 2usize..6,
        alpha in 0.15f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7).wrapping_add(29));
        let g0 = random_graph(n, extra, &mut rng);
        let p = 0.5;
        let a0 = row_stochastic(&g0, p);
        let steps = vec![PropagationStep::Finite(2), PropagationStep::Infinite];
        let d = 3;
        let x0: Mat = Mat::uniform(n, d, 1.0, &mut rng);

        // Sequential side: one refresh per delta.
        let mut g_seq = g0.clone();
        let mut a_seq = a0.clone();
        let mut x = x0.clone();
        let mut seq = ApprChain::build(&a_seq, &x, alpha, &steps, PprSolver::Push);
        let mut deltas = Vec::new();
        let mut onboard_rows: Vec<Vec<f64>> = Vec::new();
        for _ in 0..ops {
            let (delta, new_rows, _) = random_delta(&g_seq, &mut rng);
            let result = delta.apply(&mut g_seq, &a_seq, p);
            a_seq = result.a_tilde;
            for _ in 0..new_rows {
                let row: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let n_old = x.rows();
                let mut grown = Mat::zeros(n_old + 1, d);
                grown.as_mut_slice()[..n_old * d].copy_from_slice(x.as_slice());
                grown.row_mut(n_old).copy_from_slice(&row);
                x = grown;
                onboard_rows.push(row);
            }
            seq.refresh(&a_seq, &x, &result.touched);
            deltas.push(delta);
        }

        // Coalesced side: merge FIFO, one refresh on the origin chain.
        let mut merged = deltas[0].clone();
        for dl in &deltas[1..] {
            merged.merge(dl);
        }
        let mut g_co = g0.clone();
        let result = merged.apply(&mut g_co, &a0, p);
        prop_assert_eq!(&result.a_tilde, &a_seq);
        let mut co = ApprChain::build(&a0, &x0, alpha, &steps, PprSolver::Push);
        // Merged onboarding concatenates in FIFO order, so the grown
        // feature matrix is identical to the sequential side's.
        co.refresh(&result.a_tilde, &x, &result.touched);

        // Fewer refreshes compound fewer certificates: every converged
        // solve (build or refresh, push or power) certifies at most
        // `(1−α)·tol/α`, so the coalesced history (build + 1 refresh) sums
        // to at most two certificates while the sequential one carries
        // `1 + ops`.
        let cert = (1.0 - alpha) * 1e-10 / alpha;
        prop_assert!(
            co.cumulative_staleness_bound() <= 2.0 * cert * (1.0 + 1e-9),
            "coalesced cumulative bound {:e} exceeds two certificates {:e}",
            co.cumulative_staleness_bound(), 2.0 * cert
        );
        prop_assert!(
            seq.cumulative_staleness_bound() <= (1 + ops) as f64 * cert * (1.0 + 1e-9),
            "sequential cumulative bound {:e} exceeds {} certificates",
            seq.cumulative_staleness_bound(), 1 + ops
        );

        let a = seq.assemble_concat();
        let b = co.assemble_concat();
        prop_assert_eq!(a.shape(), b.shape());
        let bound =
            (seq.staleness_bound() + co.staleness_bound()) / steps.len() as f64 + 1e-14;
        let (rows, _) = a.shape();
        for r in 0..rows {
            for (c, (av, bv)) in a.row(r).iter().zip(b.row(r)).enumerate() {
                if c < d {
                    prop_assert_eq!(av, bv, "finite block must stay bitwise (row {})", r);
                } else {
                    prop_assert!(
                        (av - bv).abs() <= bound,
                        "coalesced refresh drifted {:e} > {:e}", (av - bv).abs(), bound
                    );
                }
            }
        }
    }
}
