//! Property tests for the substrate crates: linear algebra identities, CSR
//! structure, NN gradient checks over randomized architectures, DP sampler
//! distributions. These complement the per-module unit tests with
//! randomized coverage.

#![allow(clippy::needless_range_loop)] // index-parallel loops mirror the math
use gcon::graph::Csr;
use gcon::linalg::{ops, reduce, vecops, Mat};
use gcon::nn::{Activation, Mlp, MlpConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (AB)ᵀ = BᵀAᵀ through our three multiplication kernels.
    #[test]
    fn matmul_transpose_identity(seed in 0u64..500, m in 1usize..12, k in 1usize..12, n in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Mat = Mat::uniform(m, k, 1.0, &mut rng);
        let b: Mat = Mat::uniform(k, n, 1.0, &mut rng);
        let ab_t = ops::matmul(&a, &b).transpose();
        let bt_at = ops::matmul(&b.transpose(), &a.transpose());
        for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// Frobenius inner product is symmetric and reduces to the squared norm.
    #[test]
    fn frobenius_inner_symmetry(seed in 0u64..500, m in 1usize..10, n in 1usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Mat = Mat::uniform(m, n, 2.0, &mut rng);
        let b: Mat = Mat::uniform(m, n, 2.0, &mut rng);
        prop_assert!((ops::frobenius_inner(&a, &b) - ops::frobenius_inner(&b, &a)).abs() < 1e-12);
        prop_assert!((ops::frobenius_inner(&a, &a) - a.frobenius_norm_sq()).abs() < 1e-10);
    }

    /// Row normalization produces unit (or zero) rows and is idempotent.
    #[test]
    fn row_normalization_idempotent(seed in 0u64..500, m in 1usize..15, n in 1usize..15) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Mat::uniform(m, n, 3.0, &mut rng);
        a.normalize_rows_l2();
        for norm in reduce::row_norms2(&a) {
            prop_assert!(norm < 1e-12 || (norm - 1.0).abs() < 1e-12);
        }
        let before = a.clone();
        a.normalize_rows_l2();
        for (x, y) in a.as_slice().iter().zip(before.as_slice()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// CSR round-trip: to_dense of from_row_entries reproduces the entries,
    /// and spmv agrees with the dense product.
    #[test]
    fn csr_roundtrip(seed in 0u64..500, n in 1usize..20, density in 0.05f64..0.6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for row in entries.iter_mut() {
            for j in 0..n as u32 {
                if rng.gen::<f64>() < density {
                    row.push((j, rng.gen_range(-2.0..2.0)));
                }
            }
        }
        let sp = Csr::from_row_entries(n, n, entries);
        let dense = sp.to_dense();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let fast = sp.spmv(&x);
        for i in 0..n {
            let slow = vecops::dot(dense.row(i), &x);
            prop_assert!((fast[i] - slow).abs() < 1e-10);
        }
        prop_assert_eq!(sp.nnz(), dense.as_slice().iter().filter(|&&v| v != 0.0).count());
    }

    /// Full-network gradient check over randomized small architectures.
    #[test]
    fn mlp_gradcheck_random_architectures(
        seed in 0u64..200,
        d_in in 1usize..6,
        hidden in 1usize..8,
        d_out in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            &MlpConfig {
                dims: vec![d_in, hidden, d_out],
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Sigmoid,
            },
            &mut rng,
        );
        let x = Mat::uniform(3, d_in, 1.0, &mut rng);
        let c = Mat::uniform(3, d_out, 1.0, &mut rng);
        let loss = |m: &Mlp| ops::frobenius_inner(&m.forward(&x), &c);
        let cache = mlp.forward_cached(&x);
        let (_, grads) = mlp.backward(&cache, c.clone());
        let h = 1e-6;
        // Check one random weight per layer (full sweeps live in unit tests).
        for (l, g) in grads.iter().enumerate() {
            let i = seed as usize % mlp.layers[l].w.rows();
            let j = (seed as usize / 7) % mlp.layers[l].w.cols();
            let mut mp = mlp.clone();
            mp.layers[l].w.add_at(i, j, h);
            let mut mm = mlp.clone();
            mm.layers[l].w.add_at(i, j, -h);
            let fd = (loss(&mp) - loss(&mm)) / (2.0 * h);
            prop_assert!((fd - g.dw.get(i, j)).abs() < 1e-4,
                "layer {} dW[{}][{}]: fd {} vs {}", l, i, j, fd, g.dw.get(i, j));
        }
    }

    /// Dataset binary codec round-trips arbitrary generated datasets.
    #[test]
    fn dataset_codec_roundtrip(seed in 0u64..100) {
        let d = gcon::datasets::two_moons_graph(seed);
        let bytes = gcon::datasets::io::encode_dataset(&d);
        let back = gcon::datasets::io::decode_dataset(&bytes).unwrap();
        prop_assert_eq!(back.labels, d.labels);
        prop_assert_eq!(back.graph.edges(), d.graph.edges());
        prop_assert_eq!(back.features.as_slice(), d.features.as_slice());
        prop_assert_eq!(back.split.test, d.split.test);
    }

    /// Laplace mechanism output differs from input but preserves the mean
    /// over many coordinates (unbiasedness).
    #[test]
    fn laplace_mechanism_unbiased(seed in 0u64..100, eps in 0.5f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000;
        let mut vals = vec![1.0; n];
        gcon::dp::mechanisms::laplace_mechanism(&mut vals, 1.0, eps, &mut rng);
        let mean = vecops::mean(&vals);
        // std of the mean = sqrt(2)/eps/sqrt(n)
        let tol = 6.0 * (2.0f64).sqrt() / (eps * (n as f64).sqrt());
        prop_assert!((mean - 1.0).abs() < tol, "mean {} tol {}", mean, tol);
    }
}
