//! Failure-injection tests: every documented precondition across the public
//! API must reject bad input loudly (panic or `Err`), never silently produce
//! garbage — in a DP system a silent fallback is a privacy bug, not a
//! robustness feature.

use gcon::core::propagation::{propagate, PropagationStep};
use gcon::core::{GconConfig, LossKind};
use gcon::graph::normalize::{general_r, row_stochastic};
use gcon::graph::Graph;
use gcon::linalg::lu::Lu;
use gcon::linalg::Mat;

// ---------------------------------------------------------------- config

#[test]
fn config_rejects_zero_alpha() {
    let cfg = GconConfig { alpha: 0.0, ..GconConfig::default() };
    assert!(cfg.validate().unwrap_err().contains("restart probability"));
}

#[test]
fn config_rejects_alpha_above_one() {
    let cfg = GconConfig { alpha: 1.5, ..GconConfig::default() };
    assert!(cfg.validate().is_err());
}

#[test]
fn config_rejects_empty_steps() {
    let cfg = GconConfig { steps: vec![], ..GconConfig::default() };
    assert!(cfg.validate().unwrap_err().contains("propagation step"));
}

#[test]
fn config_rejects_non_positive_lambda() {
    for lambda in [0.0, -1.0, f64::NAN] {
        let cfg = GconConfig { lambda, ..GconConfig::default() };
        assert!(cfg.validate().is_err(), "Λ = {lambda} must be rejected");
    }
}

#[test]
fn config_rejects_omega_at_boundaries() {
    for omega in [0.0, 1.0, -0.1, 1.1] {
        let cfg = GconConfig { omega, ..GconConfig::default() };
        assert!(cfg.validate().is_err(), "ω = {omega} must be rejected");
    }
}

#[test]
fn config_rejects_degenerate_pseudo_huber() {
    let cfg = GconConfig { loss: LossKind::PseudoHuber { delta: 0.0 }, ..GconConfig::default() };
    assert!(cfg.validate().unwrap_err().contains("pseudo-Huber"));
}

#[test]
fn config_rejects_nan_omega_and_alpha() {
    assert!(GconConfig { omega: f64::NAN, ..GconConfig::default() }.validate().is_err());
    assert!(GconConfig { alpha: f64::NAN, ..GconConfig::default() }.validate().is_err());
}

#[test]
fn config_default_is_valid() {
    assert!(GconConfig::default().validate().is_ok());
}

// ------------------------------------------------------------ calibration

#[test]
#[should_panic(expected = "ε must be positive")]
fn calibration_rejects_zero_epsilon() {
    use gcon::core::loss::ConvexLoss;
    use gcon::core::params::{CalibrationInput, TheoremOneParams};
    let bounds = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3).bounds();
    let _ = TheoremOneParams::compute(&CalibrationInput {
        eps: 0.0,
        delta: 1e-4,
        omega: 0.9,
        lambda: 0.2,
        n1: 100,
        num_classes: 3,
        dim: 8,
        bounds,
        psi: 1.0,
    });
}

#[test]
#[should_panic(expected = "δ must lie in (0, 1)")]
fn calibration_rejects_delta_one() {
    use gcon::core::loss::ConvexLoss;
    use gcon::core::params::{CalibrationInput, TheoremOneParams};
    let bounds = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 3).bounds();
    let _ = TheoremOneParams::compute(&CalibrationInput {
        eps: 1.0,
        delta: 1.0,
        omega: 0.9,
        lambda: 0.2,
        n1: 100,
        num_classes: 3,
        dim: 8,
        bounds,
        psi: 1.0,
    });
}

// ------------------------------------------------------------- propagation

#[test]
#[should_panic(expected = "restart probability")]
fn propagate_rejects_alpha_zero() {
    let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
    let a = gcon::graph::normalize::row_stochastic_default(&g);
    let x = Mat::zeros(3, 2);
    let _ = propagate(&a, &x, 0.0, PropagationStep::Finite(1));
}

#[test]
#[should_panic(expected = "dimension mismatch")]
fn propagate_rejects_mismatched_rows() {
    let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
    let a = gcon::graph::normalize::row_stochastic_default(&g);
    let x = Mat::zeros(5, 2); // 5 rows vs 3-node graph
    let _ = propagate(&a, &x, 0.5, PropagationStep::Finite(1));
}

// ------------------------------------------------------------- graph edits

#[test]
#[should_panic(expected = "not present")]
fn removing_missing_edge_panics() {
    let g = Graph::from_edges(3, &[(0, 1)]);
    let _ = g.with_edge_removed(1, 2);
}

#[test]
#[should_panic(expected = "already present")]
fn adding_duplicate_edge_panics() {
    let g = Graph::from_edges(3, &[(0, 1)]);
    let _ = g.with_edge_added(0, 1);
}

#[test]
fn self_loop_silently_ignored_keeps_graph_simple() {
    // The paper's Â = A + I adds self-loops in *normalization* only; the raw
    // edge set stays simple — add_edge refuses loops rather than storing one.
    let mut g = Graph::empty(3);
    assert!(!g.add_edge(1, 1));
    assert_eq!(g.num_edges(), 0);
    assert!(!g.has_edge(1, 1));
}

// ---------------------------------------------------------- normalization

#[test]
#[should_panic(expected = "clip p must lie in (0, 0.5]")]
fn clip_p_out_of_range_panics() {
    let g = Graph::from_edges(3, &[(0, 1)]);
    let _ = row_stochastic(&g, 0.7);
}

#[test]
#[should_panic(expected = "must lie in [0, 1]")]
fn general_r_negative_panics() {
    let g = Graph::from_edges(3, &[(0, 1)]);
    let _ = general_r(&g, -0.1);
}

// -------------------------------------------------------------- objective

#[test]
#[should_panic(expected = "Z/Y row mismatch")]
fn objective_rejects_mismatched_labels() {
    use gcon::core::loss::ConvexLoss;
    use gcon::core::objective::PerturbedObjective;
    let z = Mat::zeros(4, 3);
    let y = Mat::zeros(5, 2);
    let b = Mat::zeros(3, 2);
    let _ = PerturbedObjective::new(
        &z,
        &y,
        ConvexLoss::new(LossKind::MultiLabelSoftMargin, 2),
        0.5,
        &b,
    );
}

#[test]
#[should_panic(expected = "B rows must equal d")]
fn objective_rejects_wrong_noise_shape() {
    use gcon::core::loss::ConvexLoss;
    use gcon::core::objective::PerturbedObjective;
    let z = Mat::zeros(4, 3);
    let y = Mat::zeros(4, 2);
    let b = Mat::zeros(7, 2);
    let _ = PerturbedObjective::new(
        &z,
        &y,
        ConvexLoss::new(LossKind::MultiLabelSoftMargin, 2),
        0.5,
        &b,
    );
}

#[test]
#[should_panic(expected = "Λ̄+Λ′ must be positive")]
fn objective_rejects_zero_lambda() {
    use gcon::core::loss::ConvexLoss;
    use gcon::core::objective::PerturbedObjective;
    let z = Mat::zeros(4, 3);
    let y = Mat::zeros(4, 2);
    let b = Mat::zeros(3, 2);
    let _ = PerturbedObjective::new(
        &z,
        &y,
        ConvexLoss::new(LossKind::MultiLabelSoftMargin, 2),
        0.0,
        &b,
    );
}

// ------------------------------------------------------------------ noise

#[test]
#[should_panic(expected = "β must be positive")]
fn noise_sampling_rejects_zero_beta() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0);
    let _ = gcon::core::noise::sample_noise_matrix(4, 2, 0.0, &mut rng);
}

#[test]
#[should_panic(expected = "degenerate shape")]
fn noise_sampling_rejects_empty_shape() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0);
    let _ = gcon::core::noise::sample_noise_matrix(0, 2, 1.0, &mut rng);
}

// ----------------------------------------------------------------- linalg

#[test]
#[should_panic(expected = "square")]
fn lu_rejects_rectangular() {
    let _ = Lu::new(&Mat::zeros(3, 4));
}

#[test]
fn lu_reports_singularity_instead_of_garbage() {
    // A singular system must answer None, not a denormal-filled solution.
    let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
    assert!(Lu::new(&a).solve(&[1.0, 2.0]).is_none());
}

#[test]
#[should_panic]
fn mat_from_vec_wrong_len_panics() {
    let _ = Mat::from_vec(2, 3, vec![1.0; 5]);
}

#[test]
#[should_panic]
fn matmul_dimension_mismatch_panics() {
    let a: Mat = Mat::zeros(2, 3);
    let b: Mat = Mat::zeros(4, 2);
    let _ = gcon::linalg::ops::matmul(&a, &b);
}

// -------------------------------------------------------------- datasets

#[test]
fn nan_features_are_caught_by_is_finite_guard() {
    // The pipeline normalizes features; a NaN row would propagate. The Mat
    // API exposes the guard callers use before training.
    let mut x = Mat::zeros(3, 2);
    x.set(1, 1, f64::NAN);
    assert!(!x.is_finite());
    x.set(1, 1, 0.0);
    assert!(x.is_finite());
}

#[test]
fn zero_feature_rows_survive_l2_normalization() {
    // normalize_rows_l2 must not divide by zero on an all-zero row.
    let mut x: Mat = Mat::zeros(2, 3);
    x.set(0, 0, 3.0);
    x.normalize_rows_l2();
    assert!(x.is_finite());
    assert!((x.get(0, 0) - 1.0).abs() < 1e-12);
    for v in x.row(1) {
        assert_eq!(*v, 0.0);
    }
}
