//! Cross-tier conformance tests for the dispatched compute kernels (PR 3 +
//! PR 4): every kernel must agree with a naive reference implementation to
//! 1e-9 **relative** tolerance over awkward shapes — tile-tail M/N/K,
//! 0/1-sized dimensions, inner dimensions straddling the `KC` cache-block
//! boundary, and feature widths that are not multiples of the unroll widths
//! — **at every dispatch tier this host supports** (pinned per-iteration via
//! `gcon_runtime::set_kernel_tier`, the in-process face of
//! `GCON_KERNEL_TIER`). Tiers the CPU lacks are skipped, never failed.
//!
//! Two distinct guarantees are asserted:
//! - *vs naive*: ≤ 1e-9 relative (tiled kernels reassociate accumulation);
//! - *across tiers*: *bit-identical* — every tier compiles the same source
//!   under strict FP semantics, so the cross-tier drift bound is zero. (The
//!   tier × thread-count subprocess matrix lives in
//!   `runtime_equivalence.rs`.)
//!
//! Both guarantees are **per dtype**: the f32 kernel family (doubled SIMD
//! lanes, its own `NR_F32`/`LANES_F32` tiling) is held to the same
//! structure — ≤ 1e-4 relative vs the f64 naive reference (f32 rounding at
//! every step) and bit-identical across tiers within f32. No bit relation
//! across dtypes is claimed.

use gcon::graph::Csr;
use gcon::linalg::{ops, vecops, Mat};
use gcon_runtime::KernelTier;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `|x - y| ≤ 1e-9 · max(1, |y|)` — the kernel acceptance tolerance.
fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= 1e-9 * y.abs().max(1.0)
}

/// f32 acceptance tolerance vs the f64 naive reference: every operand and
/// every partial sum carries ~2⁻²⁴ relative rounding, accumulated over the
/// inner dimensions these tests use (≤ a few hundred), so 1e-4 relative
/// has an order of magnitude of headroom without masking real bugs.
fn close32(x: f32, y: f64) -> bool {
    (x as f64 - y).abs() <= 1e-4 * y.abs().max(1.0)
}

fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for k in 0..a.cols() {
                s += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Csr {
    let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
    for row in entries.iter_mut() {
        for j in 0..cols as u32 {
            if rng.gen::<f64>() < density {
                row.push((j, rng.gen_range(-1.0..1.0)));
            }
        }
    }
    Csr::from_row_entries(rows, cols, entries)
}

/// Runs `kernel` once per available tier (via the entry-tier-restoring
/// `gcon_runtime::for_each_available_tier`); asserts each run is `close` to
/// `reference` element-wise and that all tiers agree **bit-for-bit** with
/// the first.
fn assert_tiers_conform(reference: &Mat, label: &str, mut kernel: impl FnMut() -> Mat) {
    let mut first: Option<(KernelTier, Mat)> = None;
    gcon_runtime::for_each_available_tier(|tier| {
        let fast = kernel();
        prop_assert_eq!(fast.shape(), reference.shape(), "{} @ {}: shape", label, tier);
        for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!(close(*x, *y), "{} @ {}: {} vs naive {}", label, tier, x, y);
        }
        match &first {
            None => first = Some((tier, fast)),
            Some((t0, f0)) => {
                for (x, y) in fast.as_slice().iter().zip(f0.as_slice()) {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "{}: tier {} and {} disagree bitwise: {} vs {}",
                        label,
                        tier,
                        t0,
                        x,
                        y
                    );
                }
            }
        }
    });
}

/// The f32 twin of [`assert_tiers_conform`]: each tier's f32 result must be
/// `close32` to the f64 naive reference and bit-identical to the other
/// tiers' f32 results.
fn assert_tiers_conform_f32(reference: &Mat, label: &str, mut kernel: impl FnMut() -> Mat<f32>) {
    let mut first: Option<(KernelTier, Mat<f32>)> = None;
    gcon_runtime::for_each_available_tier(|tier| {
        let fast = kernel();
        prop_assert_eq!(fast.shape(), reference.shape(), "{} @ {}: shape", label, tier);
        for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!(close32(*x, *y), "{} @ {}: {} vs naive {}", label, tier, x, y);
        }
        match &first {
            None => first = Some((tier, fast)),
            Some((t0, f0)) => {
                for (x, y) in fast.as_slice().iter().zip(f0.as_slice()) {
                    prop_assert!(
                        x.to_bits() == y.to_bits(),
                        "{}: tier {} and {} disagree bitwise (f32): {} vs {}",
                        label,
                        tier,
                        t0,
                        x,
                        y
                    );
                }
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `matmul` — register-tiled with packed, K-cache-blocked B panels —
    /// vs the naive triple loop at every tier. Shape ranges straddle the
    /// MR=4 / NR=8 tile boundaries and include empty and unit dimensions.
    #[test]
    fn matmul_matches_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        m in 0usize..40,
        k in 0usize..50,
        n in 0usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(k, n, 1.0, &mut rng);
        let slow = naive_matmul(&a, &b);
        assert_tiers_conform(&slow, "matmul", || ops::matmul(&a, &b));
    }

    /// `t_matmul` — pooled, sample-blocked, sparsity-adaptive — vs naive on
    /// the transpose, with sample counts crossing the TM_IB=128 block
    /// boundary and a ReLU-style zero mask so the adaptive path flips
    /// between the dense tile and the skip loop across cases.
    #[test]
    fn t_matmul_matches_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        n_samples in 0usize..300,
        d_in in 0usize..24,
        d_out in 0usize..20,
        zero_frac in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a: Mat = Mat::uniform(n_samples, d_in, 1.0, &mut rng);
        a.map_inplace(|v| if (v * 1e4).rem_euclid(1.0) < zero_frac { 0.0 } else { v });
        let b = Mat::uniform(n_samples, d_out, 1.0, &mut rng);
        let slow = naive_matmul(&a.transpose(), &b);
        assert_tiers_conform(&slow, "t_matmul", || ops::t_matmul(&a, &b));
    }

    /// `matmul_bt` — 4-batched row dots — vs naive on the transpose.
    #[test]
    fn matmul_bt_matches_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        m in 0usize..32,
        n in 0usize..32,
        k in 0usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(n, k, 1.0, &mut rng);
        let slow = naive_matmul(&a, &b.transpose());
        assert_tiers_conform(&slow, "matmul_bt", || ops::matmul_bt(&a, &b));
    }

    /// `spmm` — 4-nonzeros-per-pass — vs dense naive matmul, including
    /// rows whose nonzero count is not a multiple of the unroll group.
    #[test]
    fn spmm_matches_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        n in 1usize..50,
        k in 1usize..50,
        d in 0usize..30,
        density in 0.02f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = random_csr(n, k, density, &mut rng);
        let b = Mat::uniform(k, d, 1.0, &mut rng);
        let slow = naive_matmul(&sp.to_dense(), &b);
        assert_tiers_conform(&slow, "spmm", || sp.spmm(&b));
    }

    /// `spmv` / `spmv_t` (and their `_into` twins, which are the same code
    /// path) vs the dense reference, at every tier.
    #[test]
    fn spmv_matches_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        n in 1usize..60,
        k in 1usize..60,
        density in 0.02f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = random_csr(n, k, density, &mut rng);
        let dense = sp.to_dense();
        let x: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xt: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut first: Option<(Vec<f64>, Vec<f64>)> = None;
        gcon_runtime::for_each_available_tier(|tier| {
            let y = sp.spmv(&x);
            for (i, &yi) in y.iter().enumerate() {
                let slow: f64 = (0..k).map(|j| dense.get(i, j) * x[j]).sum();
                prop_assert!(close(yi, slow), "spmv @ {} row {}: {} vs {}", tier, i, yi, slow);
            }
            let yt = sp.spmv_t(&xt);
            for (j, &yj) in yt.iter().enumerate() {
                let slow: f64 = (0..n).map(|i| dense.get(i, j) * xt[i]).sum();
                prop_assert!(close(yj, slow), "spmv_t @ {} col {}: {} vs {}", tier, j, yj, slow);
            }
            match &first {
                None => first = Some((y, yt)),
                Some((y0, yt0)) => {
                    prop_assert!(
                        y.iter().zip(y0).all(|(a, b)| a.to_bits() == b.to_bits())
                            && yt.iter().zip(yt0).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "spmv/spmv_t disagree bitwise at tier {}", tier
                    );
                }
            }
        });
    }

    /// The lane-accumulator vector kernels vs naive sequential reductions,
    /// over lengths straddling the 8-wide lane structure, at every tier —
    /// and bit-identical across tiers.
    #[test]
    fn vecops_match_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        n in 0usize..120,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let alpha = rng.gen_range(-2.0..2.0);
        let dot_naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let n2: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        let d2: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let mut first: Option<[u64; 3]> = None;
        gcon_runtime::for_each_available_tier(|tier| {
            let (dt, nt, st) = (vecops::dot(&a, &b), vecops::norm2(&a), vecops::dist2(&a, &b));
            prop_assert!(close(dt, dot_naive), "dot @ {}", tier);
            prop_assert!(close(nt, n2), "norm2 @ {}", tier);
            prop_assert!(close(st, d2), "dist2 @ {}", tier);
            let mut y = b.clone();
            vecops::axpy(alpha, &a, &mut y);
            for ((yi, bi), ai) in y.iter().zip(&b).zip(&a) {
                prop_assert!(close(*yi, bi + alpha * ai), "axpy @ {}", tier);
            }
            let bits = [dt.to_bits(), nt.to_bits(), st.to_bits()];
            match first {
                None => first = Some(bits),
                Some(f) => prop_assert!(bits == f, "vecops disagree bitwise at tier {}", tier),
            }
        });
    }

    /// The f32 GEMM family (matmul / t_matmul / matmul_bt) over its own
    /// tile geometry (`NR_F32` = 16-wide panels) vs the f64 naive reference
    /// at every tier — and bit-identical across tiers within f32. Inputs
    /// are quantized f64 matrices, so the reference is computed on the
    /// exact values the f32 kernels see.
    #[test]
    fn f32_gemm_family_matches_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        m in 0usize..40,
        k in 0usize..50,
        n in 0usize..40,
        zero_frac in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a: Mat = Mat::uniform(m, k, 1.0, &mut rng);
        a.map_inplace(|v| if (v * 1e4).rem_euclid(1.0) < zero_frac { 0.0 } else { v });
        let b: Mat = Mat::uniform(k, n, 1.0, &mut rng);
        // Quantize, then widen back: the f64 reference sees exactly the
        // f32 operand values, isolating kernel accumulation error.
        let a32 = a.convert::<f32>();
        let b32 = b.convert::<f32>();
        let aq = a32.convert::<f64>();
        let bq = b32.convert::<f64>();

        let slow = naive_matmul(&aq, &bq);
        assert_tiers_conform_f32(&slow, "matmul f32", || ops::matmul(&a32, &b32));

        // Aᵀ·C with samples = m (the zero-masked A exercises the adaptive
        // skip path in f32 too): m×k ᵀ · m×n → k×n.
        let c: Mat = Mat::uniform(m, n, 1.0, &mut rng);
        let c32 = c.convert::<f32>();
        let slow_t = naive_matmul(&aq.transpose(), &c32.convert::<f64>());
        assert_tiers_conform_f32(&slow_t, "t_matmul f32", || ops::t_matmul(&a32, &c32));

        // A·Bᵀ: m×k · (n×k)ᵀ → m×n, dot length k crossing the widened
        // 8-batched f32 dot4 lanes.
        let bt: Mat = Mat::uniform(n, k, 1.0, &mut rng);
        let bt32 = bt.convert::<f32>();
        let slow_bt = naive_matmul(&aq, &bt32.convert::<f64>().transpose());
        assert_tiers_conform_f32(&slow_bt, "matmul_bt f32", || ops::matmul_bt(&a32, &bt32));
    }

    /// The f32 sparse kernels (spmm / spmv / spmv_t) vs the f64 dense
    /// reference on the quantized values, at every tier, bit-identical
    /// across tiers within f32.
    #[test]
    fn f32_sparse_kernels_match_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        n in 1usize..50,
        k in 1usize..50,
        d in 0usize..30,
        density in 0.02f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = random_csr(n, k, density, &mut rng);
        let sp32: Csr<f32> = sp.convert();
        let dense_q = sp32.convert::<f64>().to_dense();
        let b: Mat = Mat::uniform(k, d, 1.0, &mut rng);
        let b32 = b.convert::<f32>();
        let slow = naive_matmul(&dense_q, &b32.convert::<f64>());
        assert_tiers_conform_f32(&slow, "spmm f32", || sp32.spmm(&b32));

        let x32: Vec<f32> = (0..k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let xt32: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut first: Option<(Vec<f32>, Vec<f32>)> = None;
        gcon_runtime::for_each_available_tier(|tier| {
            let y = sp32.spmv(&x32);
            for (i, &yi) in y.iter().enumerate() {
                let slow: f64 =
                    (0..k).map(|j| dense_q.get(i, j) * x32[j] as f64).sum();
                prop_assert!(close32(yi, slow), "spmv f32 @ {} row {}: {} vs {}", tier, i, yi, slow);
            }
            let yt = sp32.spmv_t(&xt32);
            for (j, &yj) in yt.iter().enumerate() {
                let slow: f64 =
                    (0..n).map(|i| dense_q.get(i, j) * xt32[i] as f64).sum();
                prop_assert!(close32(yj, slow), "spmv_t f32 @ {} col {}: {} vs {}", tier, j, yj, slow);
            }
            match &first {
                None => first = Some((y, yt)),
                Some((y0, yt0)) => {
                    prop_assert!(
                        y.iter().zip(y0).all(|(a, b)| a.to_bits() == b.to_bits())
                            && yt.iter().zip(yt0).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "f32 spmv/spmv_t disagree bitwise at tier {}", tier
                    );
                }
            }
        });
    }

    /// The f32 lane-accumulator vector kernels (16-wide `LANES_F32`
    /// structure) vs naive f64 references on quantized inputs, at every
    /// tier, bit-identical across tiers within f32.
    #[test]
    fn f32_vecops_match_naive_reference_at_every_tier(
        seed in 0u64..10_000,
        n in 0usize..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let alpha: f32 = rng.gen_range(-2.0f32..2.0);
        let dot_naive: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        let n2: f64 = a.iter().map(|&v| (v as f64) * v as f64).sum::<f64>().sqrt();
        let d2: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x as f64 - y as f64) * (x as f64 - y as f64))
            .sum::<f64>()
            .sqrt();
        let mut first: Option<[u32; 3]> = None;
        gcon_runtime::for_each_available_tier(|tier| {
            let (dt, nt, st) = (vecops::dot(&a, &b), vecops::norm2(&a), vecops::dist2(&a, &b));
            prop_assert!(close32(dt, dot_naive), "dot f32 @ {}", tier);
            prop_assert!(close32(nt, n2), "norm2 f32 @ {}", tier);
            prop_assert!(close32(st, d2), "dist2 f32 @ {}", tier);
            let mut y = b.clone();
            vecops::axpy(alpha, &a, &mut y);
            for ((yi, &bi), &ai) in y.iter().zip(&b).zip(&a) {
                prop_assert!(
                    close32(*yi, bi as f64 + alpha as f64 * ai as f64),
                    "axpy f32 @ {}", tier
                );
            }
            let bits = [dt.to_bits(), nt.to_bits(), st.to_bits()];
            match first {
                None => first = Some(bits),
                Some(f) => prop_assert!(bits == f, "f32 vecops disagree bitwise at tier {}", tier),
            }
        });
    }
}

/// Deterministic ragged-tail sweep the random shape ranges undersample:
/// M % MR ≠ 0, N % NR ≠ 0, and inner dimensions straddling the `KC`
/// cache-block boundary (`K % KC ≠ 0` with one, two, and three partial or
/// full K blocks), for all three GEMM-family kernels at every tier.
#[test]
fn gemm_ragged_tails_and_k_blocking_conform_at_every_tier() {
    use ops::{KC, MR, NR};
    let mut rng = StdRng::seed_from_u64(77);
    let shapes: &[(usize, usize, usize)] = &[
        (MR + 1, KC - 1, NR + 1),
        (MR - 1, KC, NR - 1),
        (2 * MR + 3, KC + 1, 2 * NR + 5),
        (MR + 2, KC + 37, NR + 7),
        (3, 2 * KC + 5, 2 * NR + 1),
        (MR, 3 * KC - 1, NR),
    ];
    for &(m, k, n) in shapes {
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(k, n, 1.0, &mut rng);
        let slow = naive_matmul(&a, &b);
        assert_tiers_conform(&slow, &format!("matmul {m}x{k}x{n}"), || ops::matmul(&a, &b));

        // Aᵀ·B with the same inner-dimension stress: samples = k crosses
        // several TM_IB blocks, d_in/d_out are tile tails.
        let at = Mat::uniform(k, m, 1.0, &mut rng);
        let bt = Mat::uniform(k, n, 1.0, &mut rng);
        let slow_t = naive_matmul(&at.transpose(), &bt);
        assert_tiers_conform(&slow_t, &format!("t_matmul {k}x{m}->{m}x{n}"), || {
            ops::t_matmul(&at, &bt)
        });

        // A·Bᵀ with K = k (dot length crossing the 4-wide batches).
        let bbt = Mat::uniform(n, k, 1.0, &mut rng);
        let slow_bt = naive_matmul(&a, &bbt.transpose());
        assert_tiers_conform(&slow_bt, &format!("matmul_bt {m}x{k}·t{n}"), || {
            ops::matmul_bt(&a, &bbt)
        });
    }
}

/// **Sparsity-crossover regression test.** The adaptive `t_matmul` must
/// take the dense tile at low sparsity and the skip loop at high sparsity —
/// asserted by *bit-identical* agreement with the corresponding pinned
/// path (`TmPath::Tiled` / `TmPath::Skip`), so a mis-calibrated threshold
/// cannot silently route a block down the wrong loop. Both pinned paths are
/// also checked against the naive reference at every tier.
#[test]
fn t_matmul_sparsity_crossover_picks_the_documented_path() {
    use ops::TmPath;
    let n_samples = 3 * ops::TM_IB + 17; // several blocks + a partial one
    let (d_in, d_out) = (33, 21);
    for &zero_frac in &[0.0, 0.5, 0.9, 0.99] {
        let mut rng = StdRng::seed_from_u64(1234 + (zero_frac * 100.0) as u64);
        let mut a: Mat = Mat::uniform(n_samples, d_in, 1.0, &mut rng);
        a.map_inplace(|v| if (v * 1e4).rem_euclid(1.0) < zero_frac { 0.0 } else { v });
        let b = Mat::uniform(n_samples, d_out, 1.0, &mut rng);
        let slow = naive_matmul(&a.transpose(), &b);

        // Which loop must Auto match? Below the threshold: the dense tile;
        // above it: the skip loop. (0.5 < TM_SKIP_ZERO_FRAC < 0.9 — the
        // sweep brackets the threshold from both sides.)
        let expected_path =
            if zero_frac > ops::TM_SKIP_ZERO_FRAC { TmPath::Skip } else { TmPath::Tiled };

        gcon_runtime::for_each_available_tier(|tier| {
            let mut auto = Mat::default();
            ops::t_matmul_into_with(&a, &b, &mut auto, TmPath::Auto);
            let mut pinned = Mat::default();
            ops::t_matmul_into_with(&a, &b, &mut pinned, expected_path);
            for (x, y) in auto.as_slice().iter().zip(pinned.as_slice()) {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "zeros={zero_frac} @ {tier}: Auto disagrees with {expected_path:?} \
                     ({x} vs {y}) — wrong branch taken"
                );
            }
            // And both pinned paths stay correct vs naive.
            for path in [TmPath::Tiled, TmPath::Skip] {
                let mut out = Mat::default();
                ops::t_matmul_into_with(&a, &b, &mut out, path);
                for (x, y) in out.as_slice().iter().zip(slow.as_slice()) {
                    assert!(close(*x, *y), "zeros={zero_frac} {path:?} @ {tier}: {x} vs naive {y}");
                }
            }
        });
    }
}

/// The length contract of the vector kernels holds in release builds — and
/// at every dispatch tier: a mismatch panics instead of silently truncating
/// via `zip`.
#[test]
fn vector_kernel_length_contract_is_release_checked_at_every_tier() {
    gcon_runtime::for_each_available_tier(|tier| {
        let r = std::panic::catch_unwind(|| vecops::dot(&[1.0, 2.0, 3.0], &[1.0]));
        assert!(r.is_err(), "dot must panic on length mismatch @ {tier}");
        let r = std::panic::catch_unwind(|| {
            let mut y = vec![0.0; 2];
            vecops::axpy(1.0, &[1.0, 2.0, 3.0], &mut y);
        });
        assert!(r.is_err(), "axpy must panic on length mismatch @ {tier}");
        let r = std::panic::catch_unwind(|| vecops::dist2(&[1.0], &[1.0, 2.0]));
        assert!(r.is_err(), "dist2 must panic on length mismatch @ {tier}");
    });
}
