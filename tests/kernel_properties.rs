//! Property tests for the register-tiled compute kernels (PR 3): every
//! rewritten kernel must agree with a naive reference implementation to
//! 1e-9 **relative** tolerance over awkward shapes — tile-tail M/N/K,
//! 0/1-sized dimensions, and feature widths that are not multiples of the
//! unroll widths. (Bit-exactness is deliberately *not* asserted here: the
//! tiled kernels reassociate accumulation. What is bit-exact — identical
//! results across `GCON_THREADS` — is pinned in `runtime_equivalence.rs`.)

use gcon::graph::Csr;
use gcon::linalg::{ops, vecops, Mat};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `|x - y| ≤ 1e-9 · max(1, |y|)` — the kernel acceptance tolerance.
fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= 1e-9 * y.abs().max(1.0)
}

fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut c = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut s = 0.0;
            for k in 0..a.cols() {
                s += a.get(i, k) * b.get(k, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Csr {
    let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
    for row in entries.iter_mut() {
        for j in 0..cols as u32 {
            if rng.gen::<f64>() < density {
                row.push((j, rng.gen_range(-1.0..1.0)));
            }
        }
    }
    Csr::from_row_entries(rows, cols, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `matmul` — register-tiled with packed B panels — vs the naive triple
    /// loop. Shape ranges straddle the MR=4 / NR=8 tile boundaries and
    /// include empty and unit dimensions.
    #[test]
    fn matmul_matches_naive_reference(
        seed in 0u64..10_000,
        m in 0usize..40,
        k in 0usize..50,
        n in 0usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(k, n, 1.0, &mut rng);
        let fast = ops::matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        prop_assert_eq!(fast.shape(), (m, n));
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!(close(*x, *y), "{} vs {}", x, y);
        }
    }

    /// `t_matmul` — pooled, sample-blocked — vs naive on the transpose,
    /// with sample counts crossing the TM_IB=128 block boundary.
    #[test]
    fn t_matmul_matches_naive_reference(
        seed in 0u64..10_000,
        n_samples in 0usize..300,
        d_in in 0usize..24,
        d_out in 0usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::uniform(n_samples, d_in, 1.0, &mut rng);
        let b = Mat::uniform(n_samples, d_out, 1.0, &mut rng);
        let fast = ops::t_matmul(&a, &b);
        let slow = naive_matmul(&a.transpose(), &b);
        prop_assert_eq!(fast.shape(), (d_in, d_out));
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!(close(*x, *y), "{} vs {}", x, y);
        }
    }

    /// `matmul_bt` — 4-batched row dots — vs naive on the transpose.
    #[test]
    fn matmul_bt_matches_naive_reference(
        seed in 0u64..10_000,
        m in 0usize..32,
        n in 0usize..32,
        k in 0usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(n, k, 1.0, &mut rng);
        let fast = ops::matmul_bt(&a, &b);
        let slow = naive_matmul(&a, &b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!(close(*x, *y), "{} vs {}", x, y);
        }
    }

    /// `spmm` — 4-nonzeros-per-pass — vs dense naive matmul, including
    /// rows whose nonzero count is not a multiple of the unroll group.
    #[test]
    fn spmm_matches_naive_reference(
        seed in 0u64..10_000,
        n in 1usize..50,
        k in 1usize..50,
        d in 0usize..30,
        density in 0.02f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = random_csr(n, k, density, &mut rng);
        let b = Mat::uniform(k, d, 1.0, &mut rng);
        let fast = sp.spmm(&b);
        let slow = naive_matmul(&sp.to_dense(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!(close(*x, *y), "{} vs {}", x, y);
        }
    }

    /// `spmv` / `spmv_t` (and their `_into` twins, which are the same code
    /// path) vs the dense reference.
    #[test]
    fn spmv_matches_naive_reference(
        seed in 0u64..10_000,
        n in 1usize..60,
        k in 1usize..60,
        density in 0.02f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = random_csr(n, k, density, &mut rng);
        let dense = sp.to_dense();
        let x: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xt: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y = sp.spmv(&x);
        for (i, &yi) in y.iter().enumerate() {
            let slow: f64 = (0..k).map(|j| dense.get(i, j) * x[j]).sum();
            prop_assert!(close(yi, slow), "row {}: {} vs {}", i, yi, slow);
        }
        let yt = sp.spmv_t(&xt);
        for (j, &yj) in yt.iter().enumerate() {
            let slow: f64 = (0..n).map(|i| dense.get(i, j) * xt[i]).sum();
            prop_assert!(close(yj, slow), "col {}: {} vs {}", j, yj, slow);
        }
    }

    /// The lane-accumulator vector kernels vs naive sequential reductions,
    /// over lengths straddling the 8-wide lane structure.
    #[test]
    fn vecops_match_naive_reference(
        seed in 0u64..10_000,
        n in 0usize..120,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let dot_naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        prop_assert!(close(vecops::dot(&a, &b), dot_naive));
        let n2: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(close(vecops::norm2(&a), n2));
        let d2: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        prop_assert!(close(vecops::dist2(&a, &b), d2));
        let alpha = rng.gen_range(-2.0..2.0);
        let mut y = b.clone();
        vecops::axpy(alpha, &a, &mut y);
        for ((yi, bi), ai) in y.iter().zip(&b).zip(&a) {
            prop_assert!(close(*yi, bi + alpha * ai));
        }
    }
}

/// The length contract of the vector kernels holds in release builds: a
/// mismatch panics instead of silently truncating via `zip`.
#[test]
fn vector_kernel_length_contract_is_release_checked() {
    let r = std::panic::catch_unwind(|| vecops::dot(&[1.0, 2.0, 3.0], &[1.0]));
    assert!(r.is_err(), "dot must panic on length mismatch");
    let r = std::panic::catch_unwind(|| {
        let mut y = vec![0.0; 2];
        vecops::axpy(1.0, &[1.0, 2.0, 3.0], &mut y);
    });
    assert!(r.is_err(), "axpy must panic on length mismatch");
    let r = std::panic::catch_unwind(|| vecops::dist2(&[1.0], &[1.0, 2.0]));
    assert!(r.is_err(), "dist2 must panic on length mismatch");
}
