#![allow(clippy::needless_range_loop)] // index-parallel loops mirror the math
//! Property tests for the numerical-verification substrate added on top of
//! the base linear algebra: LU factorization, the Jacobi eigensolver, power
//! iteration, graph traversal, the parametric normalization and the DP
//! composition arithmetic.

use gcon::dp::composition;
use gcon::graph::normalize::{general_r, row_stochastic_default};
use gcon::graph::{traversal, Graph};
use gcon::linalg::eigen::{jacobi_eigen, power_iteration, singular_values};
use gcon::linalg::lu::Lu;
use gcon::linalg::{ops, Mat};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random connected-ish G(n, m) graph for traversal properties.
fn random_graph(seed: u64, n: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (2 * n).min(n * (n - 1) / 2);
    gcon::graph::generators::erdos_renyi_gnm(n, m, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LU solve then multiply-back recovers the right-hand side.
    #[test]
    fn lu_solve_roundtrip(seed in 0u64..500, n in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Mat::gaussian(n, n, 1.0, &mut rng);
        for i in 0..n {
            a.add_at(i, i, n as f64 + 2.0); // diagonally dominant → invertible
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let x = Lu::new(&a).solve(&b).unwrap();
        for i in 0..n {
            let ax: f64 = (0..n).map(|j| a.get(i, j) * x[j]).sum();
            prop_assert!((ax - b[i]).abs() < 1e-7, "row {i}: Ax = {ax}, b = {}", b[i]);
        }
    }

    /// det(AB) = det(A)·det(B).
    #[test]
    fn determinant_is_multiplicative(seed in 0u64..500, n in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = Mat::gaussian(n, n, 0.7, &mut rng);
        let mut b = Mat::gaussian(n, n, 0.7, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 2.0);
            b.add_at(i, i, 2.0);
        }
        let dab = Lu::new(&ops::matmul(&a, &b)).det();
        let da = Lu::new(&a).det();
        let db = Lu::new(&b).det();
        let scale = da.abs().max(db.abs()).max(1.0);
        prop_assert!((dab - da * db).abs() < 1e-6 * scale * scale,
            "det(AB)={dab} det(A)det(B)={}", da * db);
    }

    /// det(A) equals the product of the eigenvalues for symmetric A.
    #[test]
    fn det_equals_eigenvalue_product(seed in 0u64..500, n in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g: Mat = Mat::gaussian(n, n, 1.0, &mut rng);
        let a = Mat::from_fn(n, n, |i, j| 0.5 * (g.get(i, j) + g.get(j, i)));
        let det = Lu::new(&a).det();
        let prod: f64 = jacobi_eigen(&a, 1e-13).values.iter().product();
        prop_assert!((det - prod).abs() < 1e-6 * det.abs().max(1.0));
    }

    /// Eigenvalues of a symmetric matrix are invariant under orthogonal
    /// similarity (rotate by a Jacobi eigenbasis of another matrix).
    #[test]
    fn eigenvalues_invariant_under_rotation(seed in 0u64..300, n in 2usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g1: Mat = Mat::gaussian(n, n, 1.0, &mut rng);
        let a = Mat::from_fn(n, n, |i, j| 0.5 * (g1.get(i, j) + g1.get(j, i)));
        let g2: Mat = Mat::gaussian(n, n, 1.0, &mut rng);
        let s = Mat::from_fn(n, n, |i, j| 0.5 * (g2.get(i, j) + g2.get(j, i)));
        let q = jacobi_eigen(&s, 1e-13).vectors; // orthogonal
        // B = QᵀAQ.
        let b = ops::matmul(&ops::t_matmul(&q, &a), &q);
        let ea = jacobi_eigen(&a, 1e-13).values;
        let eb = jacobi_eigen(&b, 1e-13).values;
        for (x, y) in ea.iter().zip(&eb) {
            prop_assert!((x - y).abs() < 1e-7, "{x} vs {y}");
        }
    }

    /// σ₁ bounds the spectral action: ‖Ax‖ ≤ σ₁‖x‖.
    #[test]
    fn largest_singular_value_bounds_operator_norm(seed in 0u64..300, n in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::gaussian(n, n, 1.0, &mut rng);
        let sv = singular_values(&a, 1e-13);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xn: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut ax = vec![0.0; n];
        for i in 0..n {
            ax[i] = x.iter().enumerate().map(|(j, &v)| a.get(i, j) * v).sum();
        }
        let axn: f64 = ax.iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!(axn <= sv[0] * xn + 1e-7, "‖Ax‖={axn} > σ₁‖x‖={}", sv[0] * xn);
    }

    /// Power iteration's eigenvalue never exceeds σ₁ and matches Jacobi's
    /// top |eigenvalue| on symmetric matrices.
    #[test]
    fn power_iteration_matches_jacobi(seed in 0u64..300, n in 2usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g: Mat = Mat::gaussian(n, n, 1.0, &mut rng);
        let a = Mat::from_fn(n, n, |i, j| 0.5 * (g.get(i, j) + g.get(j, i)));
        let eig = jacobi_eigen(&a, 1e-13);
        let top = eig.values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let r = power_iteration(&a, None, 5_000, 1e-13);
        // Power iteration can stall on near-ties; allow modest slack.
        prop_assert!(r.eigenvalue.abs() <= top + 1e-6);
        if r.converged {
            let gap = (eig.values[0].abs() - eig.values[n - 1].abs()).abs();
            if gap > 0.1 {
                prop_assert!((r.eigenvalue.abs() - top).abs() < 1e-3,
                    "power {} vs jacobi {top}", r.eigenvalue);
            }
        }
    }

    /// Every Ã (row-stochastic with self-loops) keeps spectral radius ≤ 1 —
    /// the engine of Lemma 3.
    #[test]
    fn row_stochastic_spectral_radius_at_most_one(seed in 0u64..300, n in 3usize..14) {
        let g = random_graph(seed, n);
        let a = row_stochastic_default(&g).to_dense();
        let sv = singular_values(&a, 1e-12);
        // Spectral radius ≤ largest singular value is not tight enough in
        // general, so check the eigen route: Ã is similar to a symmetric
        // matrix only for regular graphs, so use power iteration instead.
        let r = gcon::linalg::eigen::spectral_radius(&a, 5_000, 1e-12);
        prop_assert!(r <= 1.0 + 1e-8, "ρ(Ã) = {r}");
        prop_assert!(sv[0] >= r - 1e-8); // consistency between the two routes
    }

    /// BFS distances satisfy the triangle inequality along edges:
    /// |dist(u) − dist(v)| ≤ 1 for every edge {u,v}.
    #[test]
    fn bfs_distance_lipschitz_along_edges(seed in 0u64..300, n in 2usize..20) {
        let g = random_graph(seed, n);
        let dist = traversal::bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            let du = dist[u as usize];
            let dv = dist[v as usize];
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                // One endpoint unreachable → both must be (same component).
                prop_assert!(du == dv);
            }
        }
    }

    /// Connected components partition the nodes and agree with BFS
    /// reachability from each component's first member.
    #[test]
    fn components_agree_with_bfs(seed in 0u64..300, n in 1usize..18) {
        let g = random_graph(seed, n.max(2));
        let (labels, count) = traversal::connected_components(&g);
        prop_assert!(count >= 1 && count <= g.num_nodes());
        let dist = traversal::bfs_distances(&g, 0);
        for v in 0..g.num_nodes() {
            let same_comp = labels[v] == labels[0];
            let reachable = dist[v] != u32::MAX;
            prop_assert_eq!(same_comp, reachable, "node {}", v);
        }
    }

    /// general_r interpolates: every entry is Â_ij scaled by positive degree
    /// powers, so supports match across r.
    #[test]
    fn general_r_support_is_r_invariant(seed in 0u64..300, n in 2usize..12, r in 0.0f64..1.0) {
        let g = random_graph(seed, n);
        let a0 = general_r(&g, 0.0);
        let ar = general_r(&g, r);
        prop_assert_eq!(a0.nnz(), ar.nnz());
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(a0.get(i, j) > 0.0, ar.get(i, j) > 0.0, "({},{})", i, j);
            }
        }
    }

    /// Advanced composition is monotone in k and never reports less total ε
    /// than a single release.
    #[test]
    fn advanced_composition_monotone(eps in 0.001f64..0.5, k in 1usize..2000) {
        let (e1, _) = composition::advanced_composition(eps, 0.0, k, 1e-6);
        let (e2, _) = composition::advanced_composition(eps, 0.0, k + 1, 1e-6);
        prop_assert!(e2 >= e1);
        prop_assert!(e1 >= eps * (2.0 * (1e6f64).ln()).sqrt().min(1.0) * 0.0 + 0.0);
    }

    /// The per-step inverse is consistent: allocating the answer back
    /// through the forward map stays within the budget.
    #[test]
    fn per_step_advanced_within_budget(total in 0.1f64..4.0, k in 2usize..5000) {
        let per = composition::per_step_epsilon_advanced(total, k, 1e-6);
        let (back, _) = composition::advanced_composition(per, 0.0, k, 1e-6);
        prop_assert!(back <= total + 1e-6, "forward({per}) = {back} > {total}");
    }
}
