//! Loopback integration suite for the `gcond` daemon: spawns the real
//! binary on an ephemeral port and proves the acceptance contract of the
//! networked serving layer end to end:
//!
//! - remote answers are **bitwise identical** to in-process
//!   `gcon-core::infer`, including under concurrent clients mixing single
//!   and bulk queries;
//! - hostile traffic — truncated frames, bit-flipped frames, oversized
//!   frames, wrong tokens, garbage before handshake — is rejected with
//!   typed errors or a dropped connection, and the server keeps serving
//!   healthy clients afterwards (no panic, no wedge);
//! - idle connections are reclaimed by the read timeout;
//! - a `ServingModel` persisted to a v3 store file restores bitwise and is
//!   exactly what the daemon serves after an O(open) restart.

use gcon::core::infer::private_logits;
use gcon::core::train::train_gcon;
use gcon::core::{GconConfig, TrainedGcon};
use gcon::graph::Graph;
use gcon::linalg::Mat;
use gcon::serve::wire::{
    read_frame, write_frame, ErrorCode, Request, Response, WireError, DEFAULT_MAX_FRAME,
    PROTO_VERSION,
};
use gcon::serve::{GconClient, ServingMode, ServingModel, StoreDtype};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;

/// Train once per test binary; every test shares the same reference model,
/// graph, features, and persisted (private-mode, f64) store file. The
/// store dtype is pinned to f64 so the bitwise-vs-`infer` assertions hold
/// under any ambient `GCON_STORE_DTYPE`.
fn fixture() -> &'static (TrainedGcon, Graph, Mat, std::path::PathBuf) {
    static FIXTURE: OnceLock<(TrainedGcon, Graph, Mat, std::path::PathBuf)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = gcon::datasets::two_moons_graph(7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut config = GconConfig::default();
        config.encoder.epochs = 10;
        config.optimizer.max_iters = 60;
        let model = train_gcon(
            &config,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            2.0,
            dataset.default_delta(),
            &mut rng,
        );
        let store = ServingModel::build_with_dtype(
            &model,
            &dataset.graph,
            &dataset.features,
            ServingMode::Private,
            StoreDtype::F64,
        );
        let dir = std::env::temp_dir().join(format!("gcond_loopback_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.gconstore");
        store.save(&path).unwrap();
        (model, dataset.graph, dataset.features, path)
    })
}

/// A running `gcond` child serving the fixture store on an ephemeral port;
/// killed on drop so failing tests don't leak daemons.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn() -> Self {
        Self::spawn_with_env(&[])
    }

    fn spawn_with_env(env: &[(&str, &str)]) -> Self {
        let (_, _, _, store_path) = fixture();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_gcond"));
        cmd.arg("--store")
            .arg(store_path)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawning gcond");
        // The daemon's contract: first stdout line is `listening on ADDR`.
        let stdout = child.stdout.take().expect("gcond stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("reading gcond banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected gcond banner: {line:?}"))
            .to_string();
        Self { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn remote_answers_match_infer_bitwise_under_concurrent_clients() {
    let (model, graph, x, _) = fixture();
    let reference = private_logits(model, graph, x);
    let daemon = Daemon::spawn();
    let n = graph.num_nodes();

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let addr = daemon.addr.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = GconClient::connect(&addr).expect("connect");
                assert_eq!(client.info().nodes as usize, n);
                // Single queries, striped per thread so the server's
                // micro-batcher sees genuinely concurrent traffic.
                for q in 0..40 {
                    let node = (t * 37 + q * 11) % n;
                    let logits = client.logits(node as u64).expect("query");
                    assert_eq!(
                        logits.as_slice(),
                        reference.row(node),
                        "thread {t}: node {node} must answer bitwise vs infer"
                    );
                }
                // A bulk query covering every node, reassembled from chunks.
                let nodes: Vec<u64> = (0..n as u64).collect();
                let bulk = client.logits_bulk(&nodes).expect("bulk");
                assert_eq!(
                    bulk.as_slice(),
                    reference.as_slice(),
                    "thread {t}: bulk answer must be the whole logit matrix, bitwise"
                );
                client.bye().expect("bye");
            });
        }
    });
}

#[test]
fn loaded_store_serves_exactly_what_build_produced() {
    let (model, graph, x, store_path) = fixture();
    // The daemon only ever saw the *file*; prove the file round-trips the
    // built store bitwise, so the daemon's answers are `build`'s answers.
    let built =
        ServingModel::build_with_dtype(model, graph, x, ServingMode::Private, StoreDtype::F64);
    let loaded = ServingModel::load(store_path).expect("loading store file");
    assert_eq!(
        loaded.store_f64().unwrap().as_slice(),
        built.store_f64().unwrap().as_slice(),
        "persisted store must restore bitwise-equal to build"
    );
    assert_eq!(loaded.mode(), built.mode());
    let daemon = Daemon::spawn();
    let mut client = GconClient::connect(&daemon.addr).expect("connect");
    for node in [0usize, 1, graph.num_nodes() - 1] {
        assert_eq!(client.logits(node as u64).expect("query"), built.logits(node));
    }
}

#[test]
fn server_stats_and_health_flow_over_the_wire() {
    let daemon = Daemon::spawn();
    let mut client = GconClient::connect(&daemon.addr).expect("connect");
    assert!(client.health().expect("health"), "fresh static store is healthy");
    let _ = client.logits(3).expect("query");
    let _ = client.logits(4).expect("query");
    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 2, "stats must count served queries, got {stats:?}");
    assert!(stats.connections >= 1);
    assert!(!stats.degraded);
}

#[test]
fn out_of_range_and_wrong_token_are_typed_errors() {
    let daemon = Daemon::spawn();
    let mut client = GconClient::connect(&daemon.addr).expect("connect");
    let n = client.info().nodes;
    match client.logits(n + 5) {
        Err(WireError::Server { code: ErrorCode::NodeOutOfRange, .. }) => {}
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    // The connection survives a typed error…
    let classes = client.info().classes as usize;
    assert_eq!(client.logits(0).expect("query after error").len(), classes);

    // …but a forged token closes it, after a BadToken error frame.
    let mut raw = TcpStream::connect(&daemon.addr).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut raw, &Request::Hello { proto: PROTO_VERSION }.encode()).unwrap();
    let ack = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().expect("hello ack");
    let token = match Response::decode(&ack).unwrap() {
        Response::HelloAck { token, .. } => token,
        other => panic!("expected HelloAck, got {other:?}"),
    };
    write_frame(&mut raw, &Request::Query { token: token ^ 1, node: 0 }.encode()).unwrap();
    let body = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().expect("error frame");
    match Response::decode(&body).unwrap() {
        Response::Error { code: ErrorCode::BadToken, .. } => {}
        other => panic!("expected BadToken, got {other:?}"),
    }
}

/// Hostile framing: oversized, truncated, and bit-flipped traffic must be
/// rejected (typed error or dropped connection) and must never take the
/// server down — a healthy client checks bitwise answers after the attacks.
#[test]
fn hostile_frames_are_rejected_and_server_survives() {
    let daemon = Daemon::spawn();

    // 1. Oversized frame header → TooLarge error, connection closed
    //    (64 MiB announced against the 8 MiB default bound).
    {
        let mut raw = TcpStream::connect(&daemon.addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        raw.write_all(&(64u32 << 20).to_le_bytes()).unwrap();
        let body = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().expect("error frame");
        match Response::decode(&body).unwrap() {
            Response::Error { code: ErrorCode::TooLarge, .. } => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    // 2. Garbage opcode, truncated payload, wrong protocol version →
    //    typed errors.
    for hostile in [vec![0xEEu8], vec![0x02u8, 1, 2, 3], Request::Hello { proto: 9 }.encode()] {
        let mut raw = TcpStream::connect(&daemon.addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut raw, &hostile).unwrap();
        let body = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().expect("error frame");
        match Response::decode(&body).unwrap() {
            Response::Error { code: ErrorCode::BadFrame | ErrorCode::BadHandshake, .. } => {}
            other => panic!("expected BadFrame/BadHandshake for {hostile:?}, got {other:?}"),
        }
    }

    // 3. Bit-flip every byte of a valid handshake frame, one connection
    //    each. Any outcome except a server crash is acceptable.
    let hello = Request::Hello { proto: PROTO_VERSION }.encode();
    for i in 0..hello.len() {
        let mut flipped = hello.clone();
        flipped[i] ^= 0x40;
        let mut raw = TcpStream::connect(&daemon.addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut raw, &flipped).unwrap();
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink); // whatever the server said; it may just close
    }

    // 4. A torn frame: the header promises more bytes than are ever sent,
    //    then the socket drops — the server's framing treats the mid-frame
    //    disconnect as malformed and reclaims the thread.
    {
        let mut raw = TcpStream::connect(&daemon.addr).expect("connect");
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[1, 2, 3]).unwrap();
    }

    // After all of the above, the server still answers a healthy client —
    // bitwise vs in-process inference.
    let (model, graph, x, _) = fixture();
    let reference = private_logits(model, graph, x);
    let mut client = GconClient::connect(&daemon.addr).expect("connect after hostility");
    assert!(client.health().expect("health"));
    let logits = client.logits(5).expect("query after hostility");
    assert_eq!(logits.as_slice(), reference.row(5), "still bitwise-correct after attacks");
}

/// The timeout path: with a 200 ms read timeout, an idle raw connection is
/// reclaimed by the server (closed) instead of pinning its thread forever,
/// and well-behaved clients are unaffected.
#[test]
fn idle_connections_are_reclaimed_by_read_timeout() {
    let daemon = Daemon::spawn_with_env(&[("GCON_SERVER_READ_TIMEOUT_MS", "200")]);
    let mut idle = TcpStream::connect(&daemon.addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Send nothing; within ~200 ms the server must drop us — observed as
    // EOF (or reset) on our side, well before our own 10 s read timeout.
    let mut sink = Vec::new();
    let started = std::time::Instant::now();
    let _ = idle.read_to_end(&mut sink);
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "idle connection should be closed by the server's read timeout"
    );
    // A prompt client on the same server still gets served.
    let mut client = GconClient::connect(&daemon.addr).expect("connect");
    assert!(client.health().expect("health"));
    assert!(!client.logits(1).expect("query").is_empty());
}

/// The reconnect/retry path: a server-side idle drop (read timeout
/// reclaiming the session) kills the connection under the client. A
/// zero-retry client surfaces the failure; a client with
/// `with_retries` transparently reconnects — fresh TCP, fresh `Hello`,
/// fresh token — replays the request, and still answers bitwise. The
/// retry budget is bounded: against a dead server it errors out instead
/// of hanging.
#[test]
fn client_retry_survives_server_side_drop_with_fresh_handshake() {
    let daemon = Daemon::spawn_with_env(&[("GCON_SERVER_READ_TIMEOUT_MS", "200")]);
    let (model, graph, x, _) = fixture();
    let reference = private_logits(model, graph, x);
    let mut plain = GconClient::connect(&daemon.addr).expect("connect");
    let mut retrying = GconClient::connect(&daemon.addr).expect("connect").with_retries(2);
    assert_eq!(plain.logits(0).expect("warm query").as_slice(), reference.row(0));
    assert_eq!(retrying.logits(0).expect("warm query").as_slice(), reference.row(0));

    // Idle past the server's 200 ms read timeout: both sessions are
    // reclaimed server-side.
    std::thread::sleep(Duration::from_millis(600));
    assert!(plain.logits(1).is_err(), "zero-retry client must surface the dropped session");
    assert_eq!(
        retrying.logits(1).expect("retried query").as_slice(),
        reference.row(1),
        "reconnect-and-replay must answer bitwise"
    );

    // Bulk rides the same retry path (the whole stream is replayed).
    std::thread::sleep(Duration::from_millis(600));
    let nodes: Vec<u64> = (0..graph.num_nodes() as u64).collect();
    let bulk = retrying.logits_bulk(&nodes).expect("retried bulk");
    assert_eq!(bulk.as_slice(), reference.as_slice(), "retried bulk must be bitwise");

    // Against a dead server the retry budget is bounded: a typed error,
    // promptly, not a hang.
    drop(daemon);
    let started = std::time::Instant::now();
    assert!(retrying.logits(2).is_err(), "retries against a dead server must exhaust");
    assert!(started.elapsed() < Duration::from_secs(20), "bounded retry must not hang");
}

/// The bounded-inflight gate: with `GCON_SERVER_MAX_INFLIGHT=1`, 8-way
/// concurrent queries must either succeed or be rejected with a typed
/// `Overloaded` error (never a hang, never a panic), and the server-side
/// rejection counter must agree exactly with what clients observed.
#[test]
fn inflight_gate_rejects_with_overloaded_under_pressure() {
    let daemon = Daemon::spawn_with_env(&[("GCON_SERVER_MAX_INFLIGHT", "1")]);
    let rejections = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8usize {
            let addr = daemon.addr.clone();
            let rejections = &rejections;
            scope.spawn(move || {
                let mut client = GconClient::connect(&addr).expect("connect");
                let classes = client.info().classes as usize;
                for q in 0..30 {
                    match client.logits(((t * 13 + q) % 20) as u64) {
                        Ok(logits) => assert_eq!(logits.len(), classes),
                        Err(WireError::Server { code: ErrorCode::Overloaded, .. }) => {
                            rejections.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected failure under load: {other:?}"),
                    }
                }
            });
        }
    });
    let mut client = GconClient::connect(&daemon.addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.rejected_overload,
        rejections.load(std::sync::atomic::Ordering::Relaxed),
        "server-side rejection counter must match client-observed Overloaded errors"
    );
}
