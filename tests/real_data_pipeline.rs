#![allow(clippy::needless_range_loop)] // index-parallel loops mirror the math
//! The real-data path end to end: text files on disk → `text_io` loaders →
//! Algorithm 1 training → released artifact → reload → inference. This is
//! the workflow a user with the actual Planetoid files would run (the rest
//! of the suite uses the synthetic Table II stand-ins).

use gcon::core::serialize;
use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Writes a small homophilous dataset to disk in the text formats and
/// returns the three paths.
fn write_text_dataset(
    dir: &std::path::Path,
) -> (std::path::PathBuf, std::path::PathBuf, std::path::PathBuf) {
    std::fs::create_dir_all(dir).unwrap();
    let n = 90usize;
    let c = 3usize;
    // Deterministic homophilous wiring: ring within each class + sparse
    // cross links.
    let mut edges = String::new();
    for i in 0..n {
        let same_class_next = (i + c) % n;
        writeln!(edges, "{i} {same_class_next}").unwrap();
        if i % 7 == 0 {
            writeln!(edges, "{i} {}", (i + 1) % n).unwrap();
        }
    }
    let mut feats = String::new();
    for i in 0..n {
        let mut row = format!("{i}");
        for k in 0..5 {
            let v = if k == i % c { 1.0 } else { 0.15 } + 0.01 * ((i * 13 + k) % 7) as f64;
            write!(row, " {v:.4}").unwrap();
        }
        writeln!(feats, "{row}").unwrap();
    }
    let mut labels = String::new();
    for i in 0..n {
        writeln!(labels, "{i} class-{}", i % c).unwrap();
    }
    let e = dir.join("edges.txt");
    let f = dir.join("features.txt");
    let l = dir.join("labels.txt");
    std::fs::write(&e, edges).unwrap();
    std::fs::write(&f, feats).unwrap();
    std::fs::write(&l, labels).unwrap();
    (e, f, l)
}

#[test]
fn text_files_through_algorithm1_and_release() {
    let dir = std::env::temp_dir().join("gcon_real_data_pipeline");
    let (e, f, l) = write_text_dataset(&dir);

    let dataset =
        gcon::datasets::text_io::load_from_files("disk-homophilous", &e, &f, &l, 0.5, 0.2, 42)
            .expect("load text dataset");
    assert_eq!(dataset.num_nodes(), 90);
    assert_eq!(dataset.num_classes, 3);
    // The wiring above is class-pure except the sparse cross links.
    let stats = dataset.stats();
    assert!(stats.homophily > 0.7, "homophily {}", stats.homophily);

    let mut cfg = GconConfig::default();
    cfg.encoder.epochs = 60;
    cfg.optimizer.max_iters = 500;
    cfg.alpha = 0.6;
    let mut rng = StdRng::seed_from_u64(9);
    let model = train_gcon(
        &cfg,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        4.0,
        dataset.default_delta(),
        &mut rng,
    );

    // Release + reload, then evaluate on the held-out split.
    let path = dir.join("model.gcon");
    serialize::save(&model, &path).unwrap();
    let loaded = serialize::load(&path).unwrap();
    let pred = private_predict(&loaded, &dataset.graph, &dataset.features);
    let test_pred: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
    let f1 = micro_f1(&test_pred, &dataset.test_labels());
    assert!(f1 > 0.55, "file-loaded pipeline micro-F1 {f1} at ε = 4");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn text_loader_matches_direct_construction() {
    // The same graph assembled via text files and via Graph::from_edges
    // must produce identical propagation output.
    let dir = std::env::temp_dir().join("gcon_real_data_equiv");
    let (e, f, l) = write_text_dataset(&dir);
    let dataset = gcon::datasets::text_io::load_from_files("x", &e, &f, &l, 0.5, 0.2, 1).unwrap();

    // Reconstruct directly, replicating the documented compaction (ids are
    // interned in first-appearance order over the edge file) with an
    // independent implementation.
    let mut map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let compact = |x: u32, map: &mut std::collections::HashMap<u32, u32>| {
        let next = map.len() as u32;
        *map.entry(x).or_insert(next)
    };
    let edges: Vec<(u32, u32)> = std::fs::read_to_string(&e)
        .unwrap()
        .lines()
        .map(|ln| {
            let mut p = ln.split_whitespace();
            let u: u32 = p.next().unwrap().parse().unwrap();
            let v: u32 = p.next().unwrap().parse().unwrap();
            (compact(u, &mut map), compact(v, &mut map))
        })
        .collect();
    let direct = Graph::from_edges(90, &edges);
    assert_eq!(direct.num_edges(), dataset.graph.num_edges());

    let a1 = gcon::graph::normalize::row_stochastic_default(&dataset.graph);
    let a2 = gcon::graph::normalize::row_stochastic_default(&direct);
    let z1 = gcon::core::propagation::propagate(
        &a1,
        &dataset.features,
        0.5,
        gcon::core::PropagationStep::Finite(3),
    );
    let z2 = gcon::core::propagation::propagate(
        &a2,
        &dataset.features,
        0.5,
        gcon::core::PropagationStep::Finite(3),
    );
    assert_eq!(z1.as_slice(), z2.as_slice());
    std::fs::remove_dir_all(&dir).ok();
}
