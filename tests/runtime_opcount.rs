//! Operation-count assertions for single-pass multi-scale propagation
//! (the acceptance criterion of the runtime refactor). These live in their
//! own integration-test binary because they read deltas of the process-wide
//! `Ã·Z` product counter: a `Mutex` serializes the two tests against each
//! other, and no other propagation work runs in this process.

use gcon::core::propagation::{
    concat_features, propagate, propagate_multi, spmm_ops_performed, PropagationStep,
};
use gcon::graph::normalize::row_stochastic_default;
use gcon::linalg::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes counter-reading tests within this binary.
static COUNTER_GUARD: Mutex<()> = Mutex::new(());

/// The acceptance criterion of the refactor: computing scales {m₁ < … < m_s}
/// in one sweep performs exactly max(mᵢ) `Ã·Z` products, not Σ mᵢ.
#[test]
fn single_pass_costs_max_not_sum() {
    let _guard = COUNTER_GUARD.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let g = gcon::graph::generators::erdos_renyi_gnm(50, 150, &mut rng);
    let a = row_stochastic_default(&g);
    let x = Mat::uniform(50, 4, 1.0, &mut rng);
    let steps =
        [PropagationStep::Finite(2), PropagationStep::Finite(5), PropagationStep::Finite(9)];

    let before = spmm_ops_performed();
    let _ = propagate_multi(&a, &x, 0.4, &steps);
    let single_pass = spmm_ops_performed() - before;
    assert_eq!(single_pass, 9, "single-pass must cost max(m_i) products");

    let before = spmm_ops_performed();
    for &s in &steps {
        let _ = propagate(&a, &x, 0.4, s);
    }
    let per_scale = spmm_ops_performed() - before;
    assert_eq!(per_scale, 16, "per-scale costs Σ m_i products");

    // concat_features rides the single-pass sweep.
    let before = spmm_ops_performed();
    let _ = concat_features(&a, &x, 0.4, &steps);
    assert_eq!(spmm_ops_performed() - before, 9);
}

/// With an `∞` scale the sweep costs max-finite + fixed-point iterations —
/// strictly fewer products than running PPR from scratch plus the finite
/// scales separately.
#[test]
fn single_pass_with_infinity_is_a_strict_continuation() {
    let _guard = COUNTER_GUARD.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(78);
    let g = gcon::graph::generators::erdos_renyi_gnm(40, 120, &mut rng);
    let a = row_stochastic_default(&g);
    let x = Mat::uniform(40, 3, 1.0, &mut rng);
    let steps = [PropagationStep::Finite(6), PropagationStep::Infinite];

    let before = spmm_ops_performed();
    let _ = propagate_multi(&a, &x, 0.5, &steps);
    let single_pass = spmm_ops_performed() - before;

    let before = spmm_ops_performed();
    for &s in &steps {
        let _ = propagate(&a, &x, 0.5, s);
    }
    let per_scale = spmm_ops_performed() - before;
    assert!(
        single_pass < per_scale,
        "continuation ({single_pass} products) must beat per-scale ({per_scale})"
    );
}
