//! Operation-count assertions for single-pass multi-scale propagation
//! (the acceptance criterion of the runtime refactor). These live in their
//! own integration-test binary because they read deltas of the process-wide
//! `Ã·Z` product counter: a `Mutex` serializes the two tests against each
//! other, and no other propagation work runs in this process.

use gcon::core::propagation::{
    concat_features, ppr_cgnr_budget, propagate, propagate_multi, solve_ppr_cgnr,
    spmm_ops_performed, PprOperator, PropagationStep,
};
use gcon::graph::normalize::row_stochastic_default;
use gcon::linalg::solve::cgnr;
use gcon::linalg::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes counter-reading tests within this binary.
static COUNTER_GUARD: Mutex<()> = Mutex::new(());

/// The acceptance criterion of the refactor: computing scales {m₁ < … < m_s}
/// in one sweep performs exactly max(mᵢ) `Ã·Z` products, not Σ mᵢ.
#[test]
fn single_pass_costs_max_not_sum() {
    let _guard = COUNTER_GUARD.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let g = gcon::graph::generators::erdos_renyi_gnm(50, 150, &mut rng);
    let a = row_stochastic_default(&g);
    let x = Mat::uniform(50, 4, 1.0, &mut rng);
    let steps =
        [PropagationStep::Finite(2), PropagationStep::Finite(5), PropagationStep::Finite(9)];

    let before = spmm_ops_performed();
    let _ = propagate_multi(&a, &x, 0.4, &steps);
    let single_pass = spmm_ops_performed() - before;
    assert_eq!(single_pass, 9, "single-pass must cost max(m_i) products");

    let before = spmm_ops_performed();
    for &s in &steps {
        let _ = propagate(&a, &x, 0.4, s);
    }
    let per_scale = spmm_ops_performed() - before;
    assert_eq!(per_scale, 16, "per-scale costs Σ m_i products");

    // concat_features rides the single-pass sweep.
    let before = spmm_ops_performed();
    let _ = concat_features(&a, &x, 0.4, &steps);
    assert_eq!(spmm_ops_performed() - before, 9);
}

/// With an `∞` scale the sweep costs max-finite + fixed-point iterations —
/// strictly fewer products than running PPR from scratch plus the finite
/// scales separately.
#[test]
fn single_pass_with_infinity_is_a_strict_continuation() {
    let _guard = COUNTER_GUARD.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(78);
    let g = gcon::graph::generators::erdos_renyi_gnm(40, 120, &mut rng);
    let a = row_stochastic_default(&g);
    let x = Mat::uniform(40, 3, 1.0, &mut rng);
    let steps = [PropagationStep::Finite(6), PropagationStep::Infinite];

    let before = spmm_ops_performed();
    let _ = propagate_multi(&a, &x, 0.5, &steps);
    let single_pass = spmm_ops_performed() - before;

    let before = spmm_ops_performed();
    for &s in &steps {
        let _ = propagate(&a, &x, 0.5, s);
    }
    let per_scale = spmm_ops_performed() - before;
    assert!(
        single_pass < per_scale,
        "continuation ({single_pass} products) must beat per-scale ({per_scale})"
    );
}

/// The block-CGNR acceptance criterion: solving all d columns together costs
/// one `Ã` + one `Ãᵀ` product per iteration *total* (plus one initial `Ãᵀb`
/// and one final true-residual check), while the per-column loop pays that
/// per column — `2·max_j(iters_j) + 2` products versus `Σ_j (2·iters_j + 2)`.
/// Also asserts column-for-column agreement between the two paths.
#[test]
fn block_cgnr_one_product_pair_per_iteration() {
    let _guard = COUNTER_GUARD.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(79);
    let (n, d) = (150usize, 8usize);
    let g = gcon::graph::generators::erdos_renyi_gnm(n, 3 * n, &mut rng);
    let a = row_stochastic_default(&g);
    let mut x = Mat::uniform(n, d, 1.0, &mut rng);
    x.normalize_rows_l2();
    let alpha = 0.05; // the CGNR regime
    let budget = ppr_cgnr_budget(n);

    let before = spmm_ops_performed();
    let (z_block, stats) = solve_ppr_cgnr(&a, &x, alpha, budget);
    let block_products = spmm_ops_performed() - before;
    assert!(stats.iter().all(|s| s.converged), "stats: {stats:?}");
    let max_iters = stats.iter().map(|s| s.iterations).max().unwrap();
    assert_eq!(
        block_products,
        2 * max_iters + 2,
        "block CGNR must perform one product pair per iteration for all {d} columns"
    );

    // The old column-at-a-time path through the single-vector operator.
    let op = PprOperator::new(&a, alpha);
    let before = spmm_ops_performed();
    let mut column_iters_sum = 0;
    for j in 0..d {
        let mut b = x.col(j);
        for v in &mut b {
            *v *= alpha;
        }
        let (col, s) = cgnr(&op, &b, 1e-12, budget);
        assert!(s.converged);
        column_iters_sum += s.iterations;
        for (i, &v) in col.iter().enumerate() {
            assert!(
                (z_block.get(i, j) - v).abs() < 1e-10,
                "({i},{j}): block {} vs column {v}",
                z_block.get(i, j)
            );
        }
    }
    let column_products = spmm_ops_performed() - before;
    assert_eq!(
        column_products,
        2 * column_iters_sum + 2 * d,
        "per-column CGNR pays a product pair per iteration per column"
    );
    assert!(
        block_products < column_products,
        "block ({block_products}) must beat per-column ({column_products}) for {d} columns"
    );
}

/// The CGNR path's operator applications are accounted: a lone `spmv`, a
/// transposed `spmm_t_into` and one single-vector operator round trip all
/// land in the shared counter (the pre-fix code bypassed it entirely).
#[test]
fn cgnr_operator_products_are_counted() {
    let _guard = COUNTER_GUARD.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(80);
    let g = gcon::graph::generators::erdos_renyi_gnm(30, 90, &mut rng);
    let a = row_stochastic_default(&g);
    let v = vec![1.0; 30];

    let before = spmm_ops_performed();
    let _ = a.spmv(&v);
    assert_eq!(spmm_ops_performed() - before, 1, "spmv counts as one product");

    let before = spmm_ops_performed();
    let mut out = Mat::default();
    a.spmm_t_into(&Mat::from_fn(30, 2, |i, j| (i + j) as f64), &mut out);
    assert_eq!(spmm_ops_performed() - before, 1, "spmm_t_into counts as one product");

    let before = spmm_ops_performed();
    let _ = a.transpose();
    assert_eq!(spmm_ops_performed() - before, 0, "transposition is structural, not a product");

    use gcon::linalg::solve::LinearOperator;
    let op = PprOperator::new(&a, 0.3);
    let before = spmm_ops_performed();
    let y = op.apply(&v);
    let _ = op.apply_transpose(&y);
    assert_eq!(
        spmm_ops_performed() - before,
        2,
        "one forward and one transposed operator application"
    );
}
