//! Workspace-level verification of the Theorem 1 proof machinery against
//! the *full* Algorithm 1 pipeline (encoder → propagation → calibration →
//! perturbation → optimization), not just against synthetic `Z` matrices.
//!
//! These tests construct genuine edge-level neighboring datasets `D`/`D'`
//! (Definition 2), push both through the real pipeline, and check the
//! Lemma 7 / Lemma 8 inequalities with the *calibrated* `c_θ` and
//! `Λ̄ + Λ′` of `TheoremOneParams` — i.e. exactly the quantities the
//! privacy proof manipulates.

use gcon::core::loss::ConvexLoss;
use gcon::core::propagation::{concat_features, propagate};
use gcon::core::verify::{
    exact_r_infinity, lemma7_check, lemma8_check, noise_from_theta, psi_observed,
};
use gcon::core::{GconConfig, PropagationStep, TheoremOneParams};
use gcon::graph::normalize::row_stochastic_default;
use gcon::graph::Graph;
use gcon::linalg::Mat;
use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small labeled problem with its aggregate features on `D` and on the
/// neighbor `D'` obtained by deleting one uniformly random edge.
struct NeighborPair {
    z: Mat,
    z_prime: Mat,
    y: Mat,
    alpha: f64,
    steps: Vec<PropagationStep>,
}

fn build_pair(seed: u64, alpha: f64, steps: Vec<PropagationStep>) -> NeighborPair {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 30;
    let g = gcon::graph::generators::erdos_renyi_gnm(n, 70, &mut rng);
    let edges = g.edges();
    let (u, v) = edges[rng.gen_range(0..edges.len())];
    let g_prime = g.with_edge_removed(u, v);

    let mut x = Mat::uniform(n, 6, 1.0, &mut rng);
    x.normalize_rows_l2();
    let c = 4;
    let mut y = Mat::zeros(n, c);
    for i in 0..n {
        y.set(i, i % c, 1.0);
    }

    let z = concat_features(&row_stochastic_default(&g), &x, alpha, &steps);
    let z_prime = concat_features(&row_stochastic_default(&g_prime), &x, alpha, &steps);
    NeighborPair { z, z_prime, y, alpha, steps }
}

fn calibrated(pair: &NeighborPair, eps: f64, lambda: f64) -> (TheoremOneParams, ConvexLoss) {
    let c = pair.y.cols();
    let loss = ConvexLoss::new(gcon::core::LossKind::MultiLabelSoftMargin, c);
    let psi = gcon::core::sensitivity::psi_z(pair.alpha, &pair.steps);
    let params = TheoremOneParams::compute(&gcon::core::params::CalibrationInput {
        eps,
        delta: 1e-4,
        omega: 0.9,
        lambda,
        n1: pair.z.rows(),
        num_classes: c,
        dim: pair.z.cols(),
        bounds: loss.bounds(),
        psi,
    });
    (params, loss)
}

#[test]
fn lemma7_holds_with_calibrated_parameters() {
    // Sample Θ with columns inside the calibrated c_θ ball (case (i) of the
    // proof) and check both Lemma 7 inequalities over several graphs.
    for seed in [1u64, 7, 42] {
        let pair = build_pair(seed, 0.5, vec![PropagationStep::Finite(2)]);
        let (params, loss) = calibrated(&pair, 1.0, 0.2);
        let d = pair.z.cols();
        let c = pair.y.cols();
        let mut rng = StdRng::seed_from_u64(seed + 999);
        // Scale columns to 90% of c_θ (the worst case the lemma covers).
        let mut theta: Mat = Mat::gaussian(d, c, 1.0, &mut rng);
        for j in 0..c {
            let norm: f64 = (0..d).map(|i| theta.get(i, j).powi(2)).sum::<f64>().sqrt();
            let target = 0.9 * params.c_theta.min(10.0);
            for i in 0..d {
                let v = theta.get(i, j) / norm * target;
                theta.set(i, j, v);
            }
        }
        for j in 0..c {
            let chk = lemma7_check(
                &pair.z,
                &pair.z_prime,
                &pair.y,
                &loss,
                params.lambda_total(),
                &theta,
                j,
            );
            assert!(
                chk.holds(1e-9),
                "seed {seed} class {j}: sv {} ≤ {}? lndet {} ≤ {}?",
                chk.sv_sum,
                chk.sv_bound,
                chk.ln_det_ratio,
                chk.ln_det_bound
            );
        }
    }
}

#[test]
fn lemma7_determinant_budget_covers_full_block_jacobian() {
    // The full Jacobian is block diagonal over classes (Eq. 46), so the
    // total log-determinant ratio is the sum over classes — and Theorem 1
    // reserves ε_Λ (Eq. 24) for it. Check measured total ≤ ε_Λ.
    let pair = build_pair(3, 0.6, vec![PropagationStep::Finite(2)]);
    let (params, loss) = calibrated(&pair, 1.0, 0.2);
    let d = pair.z.cols();
    let c = pair.y.cols();
    let mut rng = StdRng::seed_from_u64(77);
    let mut theta: Mat = Mat::gaussian(d, c, 0.1, &mut rng);
    // Keep ‖θ_j‖ well inside c_θ.
    let cap = params.c_theta.min(1.0);
    for j in 0..c {
        let norm: f64 = (0..d).map(|i| theta.get(i, j).powi(2)).sum::<f64>().sqrt();
        if norm > cap {
            for i in 0..d {
                let v = theta.get(i, j) / norm * cap;
                theta.set(i, j, v);
            }
        }
    }
    let mut total_ln_ratio = 0.0;
    for j in 0..c {
        let chk =
            lemma7_check(&pair.z, &pair.z_prime, &pair.y, &loss, params.lambda_total(), &theta, j);
        total_ln_ratio += chk.ln_det_ratio;
    }
    assert!(
        total_ln_ratio <= params.eps_lambda + 1e-9,
        "total log det ratio {total_ln_ratio} exceeds ε_Λ = {}",
        params.eps_lambda
    );
}

#[test]
fn lemma8_density_exponent_fits_remaining_budget() {
    // Lemma 8: μ(B|D)/μ(B'|D') ≤ exp(c(c₁+c₂c_θ)Ψβ) with the calibrated β —
    // and Eq. 18 sets β so that exponent ≤ max(ε−ε_Λ, ωε). Check that the
    // *measured* per-class noise shift times β stays within that budget.
    for seed in [11u64, 12, 13] {
        let pair = build_pair(seed, 0.5, vec![PropagationStep::Finite(3)]);
        let (params, loss) = calibrated(&pair, 2.0, 0.2);
        let d = pair.z.cols();
        let c = pair.y.cols();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut theta: Mat = Mat::gaussian(d, c, 0.05, &mut rng);
        let cap = params.c_theta.min(0.5);
        for j in 0..c {
            let norm: f64 = (0..d).map(|i| theta.get(i, j).powi(2)).sum::<f64>().sqrt();
            if norm > cap {
                for i in 0..d {
                    let v = theta.get(i, j) / norm * cap;
                    theta.set(i, j, v);
                }
            }
        }
        let mut total_shift = 0.0;
        for j in 0..c {
            let chk = lemma8_check(
                &pair.z,
                &pair.z_prime,
                &pair.y,
                &loss,
                params.lambda_total(),
                &theta,
                j,
            );
            assert!(chk.holds(1e-9), "seed {seed} class {j}");
            total_shift += chk.noise_shift;
        }
        // Σ_j β‖b′_j − b_j‖ bounds the log density ratio of the full B.
        let log_ratio_cap = params.beta * total_shift;
        let budget = (2.0 - params.eps_lambda).max(0.9 * 2.0);
        assert!(
            log_ratio_cap <= budget + 1e-9,
            "seed {seed}: β·Σshift = {log_ratio_cap} > budget {budget}"
        );
    }
}

#[test]
fn end_to_end_privacy_loss_bounded_by_epsilon() {
    // The headline DP inequality, measured: fix one noise draw B, train on
    // D; the same Θ_priv arises on D' under noise B' = noise_from_theta(Z').
    // The log ratio of the two noise densities plus the log Jacobian ratio
    // must not exceed ε (Eq. 41 + 45), for Θ within the c_θ ball.
    let eps = 2.0;
    let pair = build_pair(21, 0.5, vec![PropagationStep::Finite(2)]);
    let (params, loss) = calibrated(&pair, eps, 0.5);
    let d = pair.z.cols();
    let c = pair.y.cols();

    // Train on D with real sampled noise.
    let mut rng = StdRng::seed_from_u64(500);
    let b = gcon::core::noise::sample_noise_matrix(d, c, params.beta, &mut rng);
    let obj = gcon::core::objective::PerturbedObjective::new(
        &pair.z,
        &pair.y,
        ConvexLoss::new(gcon::core::LossKind::MultiLabelSoftMargin, c),
        params.lambda_total(),
        &b,
    );
    let opt = gcon::core::model::OptimizerConfig { lr: 0.05, max_iters: 40_000, grad_tol: 1e-10 };
    let (theta, _, grad_norm) = gcon::core::train::minimize(&obj, Mat::zeros(d, c), &opt);
    assert!(grad_norm < 1e-7, "optimizer did not converge: {grad_norm}");

    // Case (i) of the proof only covers ‖θ_j‖ ≤ c_θ: confirm we are in it.
    for j in 0..c {
        let norm: f64 = (0..d).map(|i| theta.get(i, j).powi(2)).sum::<f64>().sqrt();
        assert!(norm <= params.c_theta, "θ_{j} outside the c_θ ball");
    }

    // The matching noise on D'.
    let b_prime = noise_from_theta(&pair.z_prime, &pair.y, &loss, params.lambda_total(), &theta);
    let b_check = noise_from_theta(&pair.z, &pair.y, &loss, params.lambda_total(), &theta);

    // Stationarity roundtrip sanity: B recovered on D matches the sampled B.
    for i in 0..d {
        for j in 0..c {
            assert!(
                (b_check.get(i, j) - b.get(i, j)).abs() < 1e-5,
                "stationarity roundtrip failed at ({i},{j})"
            );
        }
    }

    // log density ratio of the Erlang-radius noise: β(‖B'‖ column norms − ‖B‖).
    let mut log_density_ratio = 0.0;
    for j in 0..c {
        let nb: f64 = (0..d).map(|i| b.get(i, j).powi(2)).sum::<f64>().sqrt();
        let nbp: f64 = (0..d).map(|i| b_prime.get(i, j).powi(2)).sum::<f64>().sqrt();
        log_density_ratio += params.beta * (nbp - nb);
    }

    // log Jacobian determinant ratio, summed over the class blocks.
    let mut log_jac_ratio = 0.0;
    for j in 0..c {
        let chk =
            lemma7_check(&pair.z, &pair.z_prime, &pair.y, &loss, params.lambda_total(), &theta, j);
        log_jac_ratio += chk.ln_det_ratio;
    }

    let total = log_density_ratio + log_jac_ratio;
    assert!(
        total <= eps + 1e-9,
        "measured privacy loss {total} exceeds ε = {eps} \
         (density {log_density_ratio}, jacobian {log_jac_ratio})"
    );
}

#[test]
fn exact_ppr_agrees_with_pipeline_on_dataset_graph() {
    // Cross-validate the production fixed-point PPR against the dense
    // α(I−(1−α)Ã)⁻¹ on a real generated dataset graph (small slice).
    let mut rng = StdRng::seed_from_u64(9);
    let g = gcon::graph::generators::erdos_renyi_gnm(40, 90, &mut rng);
    let a = row_stochastic_default(&g);
    let mut x = Mat::uniform(40, 8, 1.0, &mut rng);
    x.normalize_rows_l2();
    let alpha = 0.4;
    let z_iter = propagate(&a, &x, alpha, PropagationStep::Infinite);
    let z_exact = gcon::linalg::ops::matmul(&exact_r_infinity(&a, alpha), &x);
    let diff = gcon::linalg::ops::sub(&z_iter, &z_exact).max_abs();
    assert!(diff < 1e-7, "fixed point vs dense inverse differ by {diff}");
}

#[test]
fn psi_observed_from_full_pipeline_respects_lemma2() {
    // The measured ψ(Z) across D/D' never exceeds the closed form Ψ(Z),
    // including multi-scale concatenation (Eq. 26).
    for seed in [31u64, 32, 33, 34] {
        let steps = vec![PropagationStep::Finite(1), PropagationStep::Finite(5)];
        let pair = build_pair(seed, 0.3, steps.clone());
        let measured = psi_observed(&pair.z, &pair.z_prime);
        let cap = gcon::core::sensitivity::psi_z(0.3, &steps);
        assert!(measured <= cap + 1e-9, "seed {seed}: ψ {measured} > Ψ {cap}");
    }
}

#[test]
fn full_training_on_neighboring_graphs_stays_in_theta_ball() {
    // Lemma 9's complement event: with the calibrated noise the trained
    // columns stay inside c_θ with overwhelming probability — check over a
    // handful of seeds on both D and D'.
    let dataset = gcon::datasets::two_moons_graph(5);
    let mut cfg = GconConfig::default();
    cfg.encoder.epochs = 40;
    cfg.optimizer.max_iters = 400;
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = train_gcon(
            &cfg,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            1.0,
            dataset.default_delta(),
            &mut rng,
        );
        let c_theta = model.report.params.c_theta;
        let d = model.theta.rows();
        for j in 0..model.theta.cols() {
            let norm: f64 = (0..d).map(|i| model.theta.get(i, j).powi(2)).sum::<f64>().sqrt();
            assert!(
                norm <= c_theta + 1e-9,
                "seed {seed}: ‖θ_{j}‖ = {norm} escaped c_θ = {c_theta}"
            );
        }
    }
}

#[test]
fn graph_edit_roundtrip_preserves_features_sensitivity_zero() {
    // Removing then re-adding the same edge gives back the same graph, so
    // ψ(Z) must be exactly 0 — guards the neighboring-dataset machinery.
    let mut rng = StdRng::seed_from_u64(55);
    let g = gcon::graph::generators::erdos_renyi_gnm(20, 40, &mut rng);
    let (u, v) = g.edges()[0];
    let g2 = g.with_edge_removed(u, v).with_edge_added(u, v);
    let mut x = Mat::uniform(20, 4, 1.0, &mut rng);
    x.normalize_rows_l2();
    let z1 = propagate(&row_stochastic_default(&g), &x, 0.5, PropagationStep::Finite(3));
    let z2 = propagate(&row_stochastic_default(&g2), &x, 0.5, PropagationStep::Finite(3));
    assert_eq!(psi_observed(&z1, &z2), 0.0);
}

#[test]
fn neighboring_by_addition_also_respects_lemma2() {
    // Definition 2 is symmetric: D' may have one edge MORE. Check ψ ≤ Ψ for
    // edge additions too.
    let mut rng = StdRng::seed_from_u64(65);
    let g = gcon::graph::generators::erdos_renyi_gnm(25, 50, &mut rng);
    // Find a non-edge.
    let (u, v) = {
        let mut found = None;
        'outer: for u in 0..25u32 {
            for v in (u + 1)..25u32 {
                if !g.has_edge(u, v) {
                    found = Some((u, v));
                    break 'outer;
                }
            }
        }
        found.expect("graph is not complete")
    };
    let g_prime = g.with_edge_added(u, v);
    let mut x = Mat::uniform(25, 5, 1.0, &mut rng);
    x.normalize_rows_l2();
    for &(alpha, m) in &[(0.4, 2usize), (0.7, 6)] {
        let z = propagate(&row_stochastic_default(&g), &x, alpha, PropagationStep::Finite(m));
        let zp =
            propagate(&row_stochastic_default(&g_prime), &x, alpha, PropagationStep::Finite(m));
        let measured = psi_observed(&z, &zp);
        let cap = gcon::core::sensitivity::psi_zm(alpha, PropagationStep::Finite(m));
        assert!(measured <= cap + 1e-9, "α={alpha} m={m}: {measured} > {cap}");
    }
}

#[test]
fn star_graph_is_the_stress_case_for_lemma1_columns() {
    // A star's hub column sum is the worst case of Lemma 1's third bullet.
    // Verify Lemma 2 still caps ψ when the removed edge touches the hub.
    let n = 15;
    let g = {
        let mut g = Graph::empty(n);
        for v in 1..n as u32 {
            g.add_edge(0, v);
        }
        g
    };
    let g_prime = g.with_edge_removed(0, 1);
    let mut rng = StdRng::seed_from_u64(75);
    let mut x = Mat::uniform(n, 4, 1.0, &mut rng);
    x.normalize_rows_l2();
    for &alpha in &[0.2, 0.5, 0.8] {
        for &m in &[1usize, 3, 8] {
            let z = propagate(&row_stochastic_default(&g), &x, alpha, PropagationStep::Finite(m));
            let zp =
                propagate(&row_stochastic_default(&g_prime), &x, alpha, PropagationStep::Finite(m));
            let measured = psi_observed(&z, &zp);
            let cap = gcon::core::sensitivity::psi_zm(alpha, PropagationStep::Finite(m));
            assert!(measured <= cap + 1e-9, "star α={alpha} m={m}: ψ {measured} > Ψ {cap}");
        }
    }
}
