//! Scenario (ii) of Sec. IV-C6 / Algorithm 4: the trained model is queried
//! on a *different* graph than it was trained on. Private inference (Eq. 16)
//! must keep working — it only touches the query nodes' own edges — and
//! public inference applies the full propagation on the new graph.

use gcon::core::infer::{private_predict, public_predict};
use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_on(dataset: &Dataset, seed: u64) -> TrainedGcon {
    let mut cfg = GconConfig::default();
    cfg.encoder.epochs = 60;
    cfg.optimizer.max_iters = 500;
    let mut rng = StdRng::seed_from_u64(seed);
    train_gcon(
        &cfg,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        2.0,
        dataset.default_delta(),
        &mut rng,
    )
}

#[test]
fn model_transfers_to_a_fresh_graph_from_the_same_distribution() {
    // Train on one draw of the generator, test on an independent draw —
    // the deployment setting where the serving graph is not the training
    // graph.
    let train_set = gcon::datasets::two_moons_graph(31);
    let serve_set = gcon::datasets::two_moons_graph(32);
    let model = train_on(&train_set, 33);

    let pred = private_predict(&model, &serve_set.graph, &serve_set.features);
    let acc = pred.iter().zip(&serve_set.labels).filter(|(a, b)| a == b).count() as f64
        / serve_set.num_nodes() as f64;
    assert!(acc > 0.6, "cross-graph private accuracy {acc}");

    let pred_pub = public_predict(&model, &serve_set.graph, &serve_set.features);
    let acc_pub = pred_pub.iter().zip(&serve_set.labels).filter(|(a, b)| a == b).count() as f64
        / serve_set.num_nodes() as f64;
    assert!(acc_pub > 0.6, "cross-graph public accuracy {acc_pub}");
}

#[test]
fn inference_works_on_graphs_of_different_size() {
    // The released Θ_priv is d × c; inference must accept any node count.
    let train_set = gcon::datasets::two_moons_graph(35);
    let model = train_on(&train_set, 36);

    let small = gcon::datasets::two_moons_graph(37);
    // Restrict to a subgraph: first 50 nodes and their induced edges.
    let keep = 50usize;
    let mut sub = gcon::graph::Graph::empty(keep);
    for (u, v) in small.graph.edges() {
        if (u as usize) < keep && (v as usize) < keep {
            sub.add_edge(u, v);
        }
    }
    let sub_x = small.features.select_rows(&(0..keep).collect::<Vec<_>>());
    let pred = private_predict(&model, &sub, &sub_x);
    assert_eq!(pred.len(), keep);
}

#[test]
fn isolated_query_nodes_fall_back_to_their_own_features() {
    // A node with no edges aggregates only itself under Eq. 16 regardless
    // of α_I — its prediction must equal the m=0 path.
    let train_set = gcon::datasets::two_moons_graph(39);
    let model = train_on(&train_set, 40);

    let n = 20;
    let empty = gcon::graph::Graph::empty(n);
    let x = train_set.features.select_rows(&(0..n).collect::<Vec<_>>());
    let pred_empty = private_predict(&model, &empty, &x);

    // Same features on a graph where each node only self-loops through Ã
    // (no edges) must give identical output.
    let pred_again = private_predict(&model, &empty, &x);
    assert_eq!(pred_empty, pred_again);
    assert_eq!(pred_empty.len(), n);
}
