//! Property tests for the PPR solver stack: the multi-RHS block CGNR must be
//! column-for-column equivalent to the single-RHS solver, and the two
//! `PprSolver` choices (power iteration vs. CGNR) must agree on the PPR
//! limit across random Erdős–Rényi graphs and restart probabilities.

use gcon::core::propagation::{
    ppr_cgnr_budget, propagate_with_solver, solve_ppr_cgnr, PprOperator, PprSolver, PropagationStep,
};
use gcon::graph::normalize::row_stochastic_default;
use gcon::linalg::solve::cgnr;
use gcon::linalg::Mat;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_problem(seed: u64, n: usize, d: usize) -> (gcon::graph::Csr, Mat) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (3 * n).min(n * (n - 1) / 2);
    let g = gcon::graph::generators::erdos_renyi_gnm(n, m, &mut rng);
    let a = row_stochastic_default(&g);
    let mut x = Mat::uniform(n, d, 1.0, &mut rng);
    x.normalize_rows_l2();
    (a, x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `block_cgnr` is column-for-column equivalent to per-column `cgnr`:
    /// identical solver trajectories, so identical iterates to 1e-10.
    #[test]
    fn block_cgnr_matches_per_column_cgnr(
        seed in 0u64..500,
        n in 10usize..60,
        d in 1usize..6,
        alpha in 0.05f64..0.9,
    ) {
        let (a, x) = random_problem(seed, n, d);
        let budget = ppr_cgnr_budget(n);
        let (z, stats) = solve_ppr_cgnr(&a, &x, alpha, budget);
        let op = PprOperator::new(&a, alpha);
        for (j, s) in stats.iter().enumerate() {
            prop_assert!(s.converged, "column {j}: {s:?}");
            let mut b = x.col(j);
            for v in &mut b {
                *v *= alpha;
            }
            let (col, s_col) = cgnr(&op, &b, 1e-12, budget);
            prop_assert!(s_col.converged);
            for (i, &v) in col.iter().enumerate() {
                prop_assert!(
                    (z.get(i, j) - v).abs() < 1e-10,
                    "({i},{j}): block {} vs column {v}",
                    z.get(i, j)
                );
            }
        }
    }

    /// Both `PprSolver` choices compute the same `Z_∞` through
    /// `propagate(…, Infinite)` to well within fixed-point tolerance.
    #[test]
    fn power_and_cgnr_propagation_agree(
        seed in 0u64..500,
        n in 10usize..50,
        alpha in 0.03f64..0.9,
    ) {
        let (a, x) = random_problem(seed, n, 3);
        let power =
            propagate_with_solver(&a, &x, alpha, PropagationStep::Infinite, PprSolver::Power);
        let cg =
            propagate_with_solver(&a, &x, alpha, PropagationStep::Infinite, PprSolver::Cgnr);
        for (u, v) in power.as_slice().iter().zip(cg.as_slice()) {
            prop_assert!((u - v).abs() < 1e-6, "α={alpha}: {u} vs {v}");
        }
    }
}
