//! Empirical DP audit of GCON's objective-perturbation mechanism.
//!
//! The auditor fixes a pair of edge-level neighboring graphs, trains the
//! (core) mechanism many times on each, reduces each released `Θ_priv` to a
//! scalar statistic, and converts the two output distributions into a
//! Clopper–Pearson-backed lower bound on the realized privacy loss
//! (see `gcon::dp::audit`). Soundness demands the lower bound stays below
//! the claimed ε; to show the audit has teeth, a deliberately broken
//! variant (noise calibrated for a 40× larger budget) must be caught
//! spending far more than the small budget it claims.

use gcon::core::loss::ConvexLoss;
use gcon::core::model::OptimizerConfig;
use gcon::core::noise::sample_noise_matrix;
use gcon::core::objective::PerturbedObjective;
use gcon::core::params::{CalibrationInput, TheoremOneParams};
use gcon::core::propagation::{concat_features, PropagationStep};
use gcon::core::sensitivity::psi_z;
use gcon::core::train::minimize;
use gcon::core::LossKind;
use gcon::dp::audit::{audit_eps_lower_bound, AuditConfig};
use gcon::graph::normalize::row_stochastic_default;
use gcon::linalg::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Mechanism {
    z: Mat,
    z_prime: Mat,
    y: Mat,
    params: TheoremOneParams,
    loss_kind: LossKind,
}

fn build_mechanism(eps: f64) -> Mechanism {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 20;
    let g = gcon::graph::generators::erdos_renyi_gnm(n, 45, &mut rng);
    let edges = g.edges();
    let (u, v) = edges[rng.gen_range(0..edges.len())];
    let g_prime = g.with_edge_removed(u, v);

    let mut x = Mat::uniform(n, 4, 1.0, &mut rng);
    x.normalize_rows_l2();
    let c = 2;
    let mut y = Mat::zeros(n, c);
    for i in 0..n {
        y.set(i, i % c, 1.0);
    }
    let alpha = 0.6;
    let steps = [PropagationStep::Finite(2)];
    let z = concat_features(&row_stochastic_default(&g), &x, alpha, &steps);
    let z_prime = concat_features(&row_stochastic_default(&g_prime), &x, alpha, &steps);

    let loss_kind = LossKind::MultiLabelSoftMargin;
    let loss = ConvexLoss::new(loss_kind, c);
    let params = TheoremOneParams::compute(&CalibrationInput {
        eps,
        delta: 1e-4,
        omega: 0.9,
        lambda: 0.3,
        n1: n,
        num_classes: c,
        dim: z.cols(),
        bounds: loss.bounds(),
        psi: psi_z(alpha, &steps),
    });
    Mechanism { z, z_prime, y, params, loss_kind }
}

impl Mechanism {
    /// Minimizes the perturbed objective for a given noise matrix.
    fn train_with_noise(&self, z: &Mat, b: &Mat) -> Mat {
        let d = z.cols();
        let c = self.y.cols();
        let obj = PerturbedObjective::new(
            z,
            &self.y,
            ConvexLoss::new(self.loss_kind, c),
            self.params.lambda_total(),
            b,
        );
        let opt = OptimizerConfig { lr: 0.1, max_iters: 4000, grad_tol: 1e-9 };
        minimize(&obj, Mat::zeros(d, c), &opt).0
    }

    /// The adversary's optimal projection direction: the (normalized)
    /// difference between the *noiseless* minimizers on D and D'. This is
    /// public information under Kerckhoffs — the auditor knows both graphs.
    fn distinguishing_direction(&self) -> Mat {
        let zero = Mat::zeros(self.z.cols(), self.y.cols());
        let t_d = self.train_with_noise(&self.z, &zero);
        let t_dp = self.train_with_noise(&self.z_prime, &zero);
        let mut dir = gcon::linalg::ops::sub(&t_dp, &t_d);
        let norm = dir.frobenius_norm();
        assert!(norm > 0.0, "neighboring graphs produce identical minimizers");
        dir.map_inplace(|v| v / norm);
        dir
    }

    /// One mechanism invocation: sample noise at rate `beta`, minimize, and
    /// release the projection of Θ_priv onto the distinguishing direction.
    fn run(&self, z: &Mat, beta: f64, dir: &Mat, rng: &mut StdRng) -> f64 {
        let d = z.cols();
        let c = self.y.cols();
        let b = sample_noise_matrix(d, c, beta, rng);
        let theta = self.train_with_noise(z, &b);
        gcon::linalg::ops::frobenius_inner(&theta, dir)
    }
}

#[test]
fn audit_lower_bound_respects_claimed_epsilon() {
    let eps = 1.0;
    let mech = build_mechanism(eps);
    let mut rng = StdRng::seed_from_u64(101);
    let cfg = AuditConfig { trials: 250, delta: 1e-4, alpha: 0.05, thresholds: 24 };
    let beta = mech.params.beta;
    let dir = mech.distinguishing_direction();
    let r = audit_eps_lower_bound(
        |rng: &mut StdRng| mech.run(&mech.z, beta, &dir, rng),
        |rng: &mut StdRng| mech.run(&mech.z_prime, beta, &dir, rng),
        &cfg,
        &mut rng,
    );
    assert!(
        r.eps_lower_bound <= eps,
        "audit lower bound {} exceeds the claimed ε = {eps} — privacy bug",
        r.eps_lower_bound
    );
}

#[test]
fn audit_catches_undernoised_variant() {
    // Broken implementation: claims ε = 0.25 but injects essentially no
    // noise (β multiplied by 10⁶, pushing the expected noise radius six
    // orders of magnitude below the calibrated one). The strong quadratic
    // damping Λ′ shrinks the D/D' signal to ~1e-5, so anything less extreme
    // is *still private in practice* — itself a nice property of the
    // mechanism. The audit must measure a privacy loss above the claim.
    let claimed_eps = 0.25;
    let mech_honest = build_mechanism(claimed_eps);
    let mut rng = StdRng::seed_from_u64(202);
    let cfg = AuditConfig { trials: 300, delta: 1e-4, alpha: 0.05, thresholds: 24 };
    let beta_broken = mech_honest.params.beta * 1e6;
    let dir = mech_honest.distinguishing_direction();
    let r = audit_eps_lower_bound(
        |rng: &mut StdRng| mech_honest.run(&mech_honest.z, beta_broken, &dir, rng),
        |rng: &mut StdRng| mech_honest.run(&mech_honest.z_prime, beta_broken, &dir, rng),
        &cfg,
        &mut rng,
    );
    assert!(
        r.eps_lower_bound > claimed_eps,
        "undernoised mechanism not caught: lower bound {} ≤ claimed {claimed_eps}",
        r.eps_lower_bound
    );
}

#[test]
fn honest_noise_makes_outputs_statistically_close() {
    // Direct two-sample check at the calibrated β: the means of the audit
    // statistic on D and D' differ by far less than the noise spread.
    let mech = build_mechanism(1.0);
    let mut rng = StdRng::seed_from_u64(303);
    let beta = mech.params.beta;
    let dir = mech.distinguishing_direction();
    let n = 150;
    let a: Vec<f64> = (0..n).map(|_| mech.run(&mech.z, beta, &dir, &mut rng)).collect();
    let b: Vec<f64> = (0..n).map(|_| mech.run(&mech.z_prime, beta, &dir, &mut rng)).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let sd = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    };
    let gap = (mean(&a) - mean(&b)).abs();
    let spread = sd(&a).max(sd(&b));
    assert!(gap < spread, "mean gap {gap} not hidden inside the noise spread {spread}");
}
