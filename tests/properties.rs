//! Property-based tests (proptest) for the paper's key invariants, run over
//! randomized graphs, budgets and hyperparameters.

#![allow(clippy::needless_range_loop)] // index-parallel loops mirror the math
use gcon::core::loss::{ConvexLoss, LossKind};
use gcon::core::params::{CalibrationInput, TheoremOneParams};
use gcon::core::propagation::{propagate, PropagationStep};
use gcon::core::sensitivity::{psi_z, psi_zm};
use gcon::dp::special::{reg_gamma_p, reg_gamma_p_inverse};
use gcon::graph::generators::erdos_renyi_gnm;
use gcon::graph::normalize::row_stochastic;
use gcon::linalg::Mat;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 1, bullets 1–2: every entry of Ã (and of the implied R_m via
    /// Z_m on constant input) is non-negative and rows sum to 1, for any
    /// clip p ∈ (0, 0.5].
    #[test]
    fn lemma1_row_stochasticity(
        seed in 0u64..1000,
        n in 5usize..40,
        p_clip in 0.05f64..0.5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_gnm(n, n * 2, &mut rng);
        let a = row_stochastic(&g, p_clip);
        for i in 0..n {
            let (_, vals) = a.row(i);
            for &v in vals {
                prop_assert!(v >= -1e-15, "negative entry {v}");
            }
        }
        for s in a.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-12, "row sum {s}");
        }
    }

    /// Lemma 1, bullet 3: the column sums of Ã^m stay ≤ max((k_i+1)p, 1)
    /// for every power m — checked by propagating indicator columns.
    #[test]
    fn lemma1_column_bound_for_powers(
        seed in 0u64..500,
        n in 4usize..20,
        m in 1usize..6,
        p_clip in 0.1f64..0.5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_gnm(n, n * 2, &mut rng);
        let a = row_stochastic(&g, p_clip);
        // Column sums of Ã^m = row vector 1ᵀ Ã^m; compute by repeated spmv
        // on the transpose action: 1ᵀÃ = col_sums(Ã).
        let mut col = a.col_sums();
        for _ in 1..m {
            // next_col[j] = Σ_i col[i]·Ã_ij
            let mut next = vec![0.0; n];
            for i in 0..n {
                let (cols, vals) = a.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    next[j as usize] += col[i] * v;
                }
            }
            col = next;
        }
        for (i, &s) in col.iter().enumerate() {
            let bound = ((g.degree(i as u32) as f64 + 1.0) * p_clip).max(1.0);
            prop_assert!(s <= bound + 1e-9, "col {i}: {s} > {bound}");
        }
    }

    /// Ψ(Z_m) is monotone in m, bounded by 2(1−α)/α, and Ψ(Z) is the mean.
    #[test]
    fn psi_shape(alpha in 0.05f64..1.0, m in 0usize..40) {
        let v = psi_zm(alpha, PropagationStep::Finite(m));
        let vnext = psi_zm(alpha, PropagationStep::Finite(m + 1));
        let vinf = psi_zm(alpha, PropagationStep::Infinite);
        prop_assert!(v >= 0.0);
        prop_assert!(vnext >= v - 1e-12);
        prop_assert!(v <= vinf + 1e-12);
        let steps = [PropagationStep::Finite(m), PropagationStep::Infinite];
        let avg = psi_z(alpha, &steps);
        prop_assert!((avg - (v + vinf) / 2.0).abs() < 1e-12);
    }

    /// The Theorem 1 chain always yields a valid calibration: β > 0,
    /// Λ′ ≥ 0, c_θ > 0, and c_sf solving the Gamma-CDF inequality.
    #[test]
    fn theorem1_chain_valid(
        eps in 0.1f64..8.0,
        delta_exp in 2u32..8,
        omega in 0.5f64..0.99,
        lambda in 0.001f64..5.0,
        n1 in 50usize..5000,
        c in 2usize..10,
        d in 4usize..128,
        psi in 0.01f64..8.0,
    ) {
        let delta = 10f64.powi(-(delta_exp as i32));
        let bounds = ConvexLoss::new(LossKind::MultiLabelSoftMargin, c).bounds();
        let input = CalibrationInput {
            eps, delta, omega, lambda, n1, num_classes: c, dim: d, bounds, psi,
        };
        let p = TheoremOneParams::compute(&input);
        prop_assert!(p.beta > 0.0 && p.beta.is_finite());
        prop_assert!(p.lambda_prime >= 0.0);
        prop_assert!(p.c_theta > 0.0 && p.c_theta.is_finite());
        prop_assert!(p.lambda_eff >= lambda);
        // Eq. 21: P(d, c_sf) ≥ 1 − δ/c, and it is (near-)minimal.
        let target = 1.0 - delta / c as f64;
        prop_assert!(reg_gamma_p(d as f64, p.csf) >= target - 1e-9);
        prop_assert!(reg_gamma_p(d as f64, p.csf * 0.999) < target);
    }

    /// Gamma quantile round-trip over a wide range.
    #[test]
    fn gamma_quantile_roundtrip(a in 1.0f64..400.0, t in 0.01f64..0.999_999) {
        let u = reg_gamma_p_inverse(a, t);
        prop_assert!((reg_gamma_p(a, u) - t).abs() < 1e-7);
    }

    /// Propagation preserves convex-combination structure: outputs stay
    /// within the [min, max] range of each input column (Lemma 1 rows sum
    /// to 1 with non-negative weights).
    #[test]
    fn propagation_respects_input_range(
        seed in 0u64..300,
        n in 5usize..30,
        m in 0usize..8,
        alpha in 0.1f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_gnm(n, n * 2, &mut rng);
        let a = gcon::graph::normalize::row_stochastic_default(&g);
        let x = Mat::uniform(n, 3, 1.0, &mut rng);
        let z = propagate(&a, &x, alpha, PropagationStep::Finite(m));
        for j in 0..3 {
            let xcol = x.col(j);
            let lo = xcol.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xcol.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for &v in &z.col(j) {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo},{hi}]");
            }
        }
    }

    /// Micro-F1 is always in [0, 1] and 1 iff predictions match.
    #[test]
    fn micro_f1_bounds(pred in proptest::collection::vec(0usize..5, 1..50)) {
        let gold: Vec<usize> = pred.iter().map(|&p| (p + 1) % 5).collect();
        let f1_wrong = gcon::datasets::metrics::micro_f1(&pred, &gold);
        let f1_right = gcon::datasets::metrics::micro_f1(&pred, &pred);
        prop_assert!((0.0..=1.0).contains(&f1_wrong));
        prop_assert_eq!(f1_right, 1.0);
    }
}
