//! Fleet fault-injection suite: real `gcond --shard` worker processes,
//! real failures.
//!
//! - **Crash failover**: `kill -9` a replica while bulk traffic is in
//!   flight — every answer the caller sees (including the ones rerouted
//!   mid-storm) must stay bitwise identical to the single-process store,
//!   and the failover must be surfaced in the coordinator's stats.
//! - **Consensus quarantine**: corrupt one replica's store by a single
//!   decodable bit flip — `consensus_check` must quarantine exactly that
//!   replica, surface it in `Stats`, and keep serving bitwise-correct
//!   answers from the healthy replica.
//! - **Exhaustion**: a shard whose only replica died answers with a typed
//!   `NoHealthyReplica` error, never a hang or a wrong answer.

use gcon::core::train::train_gcon;
use gcon::core::GconConfig;
use gcon::linalg::Mat;
use gcon::serve::{
    Coordinator, FleetConfig, FleetError, GconClient, ServingMode, ServingModel, StoreDtype,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::Duration;

/// One trained private-mode f64 store per test binary (f64 so "bitwise
/// correct" means bitwise vs the exact same store the coordinator sliced).
fn store() -> &'static ServingModel {
    static STORE: OnceLock<ServingModel> = OnceLock::new();
    STORE.get_or_init(|| {
        let dataset = gcon::datasets::two_moons_graph(11);
        let mut rng = StdRng::seed_from_u64(5);
        let mut config = GconConfig::default();
        config.encoder.epochs = 10;
        config.optimizer.max_iters = 60;
        let model = train_gcon(
            &config,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            2.0,
            dataset.default_delta(),
            &mut rng,
        );
        ServingModel::build_with_dtype(
            &model,
            &dataset.graph,
            &dataset.features,
            ServingMode::Private,
            StoreDtype::F64,
        )
    })
}

struct ShardDaemon {
    child: Child,
    addr: String,
}

impl ShardDaemon {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gcond"))
            .arg("--shard")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning gcond --shard");
        let stdout = child.stdout.take().expect("gcond stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("reading gcond banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected gcond banner: {line:?}"))
            .to_string();
        Self { child, addr }
    }

    /// SIGKILL — no shutdown handshake, no flush: the hard-crash case.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardDaemon {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// In-process ground truth: the full logit matrix of the fixture store.
fn ground_truth() -> Mat {
    let store = store();
    let n = store.num_nodes();
    store.session().logits_batch(&(0..n).collect::<Vec<_>>()).clone()
}

/// Crash failover under fire: one shard, two replicas, bulk traffic
/// running in a loop while the preferred replica is SIGKILLed from
/// another thread. Every bulk — before, during, and after the crash —
/// must succeed with bitwise-correct rows; afterwards the coordinator
/// must report the failover and the dead replica.
#[test]
fn kill9_mid_bulk_fails_over_with_bitwise_answers() {
    let store = store();
    let truth = ground_truth();
    let n = store.num_nodes() as u64;
    let mut preferred = ShardDaemon::spawn();
    let backup = ShardDaemon::spawn();
    let topology = vec![vec![preferred.addr.clone(), backup.addr.clone()]];
    let fleet = Coordinator::deploy(store, &topology, FleetConfig::default()).unwrap();

    let nodes: Vec<u64> = (0..n).collect();
    std::thread::scope(|scope| {
        let killer = scope.spawn(move || {
            // Land the SIGKILL while the query loop below is mid-storm.
            std::thread::sleep(Duration::from_millis(60));
            preferred.kill9();
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut iterations = 0u32;
        while std::time::Instant::now() < deadline {
            let bulk = fleet.bulk(&nodes).unwrap_or_else(|e| {
                panic!("bulk {iterations} must survive the crash via failover: {e}")
            });
            assert_eq!(
                bulk.as_slice(),
                truth.as_slice(),
                "bulk {iterations}: failover answers must be bitwise identical"
            );
            iterations += 1;
            if killer.is_finished() && fleet.stats().failovers > 0 && iterations >= 5 {
                break;
            }
        }
        killer.join().unwrap();
        assert!(iterations >= 5, "the loop must have run across the crash window");
    });

    let stats = fleet.stats();
    assert!(stats.failovers >= 1, "the crash must be visible as a failover: {stats:?}");
    assert_eq!(stats.dead, 1, "exactly the killed replica is dead: {stats:?}");
    assert!(fleet.wire_stats().degraded, "a dead replica degrades fleet health");
    // Single queries keep working on the surviving replica.
    assert_eq!(fleet.query(0).unwrap().as_slice(), truth.row(0));
}

/// Consensus quarantine: a single decodable bit flip in one replica's
/// store (injected by re-assigning a tampered artifact out-of-band) is
/// caught by fingerprint cross-checking, the replica is quarantined and
/// surfaced in `Stats`, and answers stay bitwise-correct throughout.
#[test]
fn flipped_fingerprint_quarantines_replica_and_surfaces_in_stats() {
    let store = store();
    let truth = ground_truth();
    let daemons: Vec<ShardDaemon> = (0..2).map(|_| ShardDaemon::spawn()).collect();
    let topology = vec![vec![daemons[0].addr.clone(), daemons[1].addr.clone()]];
    let fleet = Coordinator::deploy(store, &topology, FleetConfig::default()).unwrap();
    assert_eq!(fleet.stats().quarantined, 0, "deploy-time consensus starts clean");

    // Tamper with replica 1 behind the coordinator's back: flip one
    // mantissa bit in the artifact (still decodes — same shape, same
    // header, one wrong weight: the worst corruption case, invisible to
    // frame validation and caught only by content fingerprints).
    let mut artifact = store.slice_bytes(0, store.num_nodes()).to_vec();
    let len = artifact.len();
    artifact[len - 3] ^= 0x01;
    let mut side = GconClient::connect(daemons[1].addr.as_str()).expect("side channel");
    side.shard_assign(0, 0, &artifact).expect("tampered artifact still decodes");

    let report = fleet.consensus_check();
    assert_eq!(report.quarantined, vec![(0, 1)], "exactly the tampered replica: {report:?}");
    assert!(report.unreachable.is_empty());
    let stats = fleet.stats();
    assert_eq!(stats.quarantined, 1, "quarantine must be surfaced in stats: {stats:?}");
    let wire = fleet.wire_stats();
    assert_eq!(wire.quarantined, 1, "and in the wire Stats shape: {wire:?}");
    assert!(wire.degraded);
    assert_eq!(
        fleet.replica_health(0),
        vec![(daemons[0].addr.clone(), true), (daemons[1].addr.clone(), false),]
    );

    // All traffic now lands on the clean replica — bitwise correct.
    let nodes: Vec<u64> = (0..store.num_nodes() as u64).collect();
    assert_eq!(fleet.bulk(&nodes).unwrap().as_slice(), truth.as_slice());
    assert_eq!(fleet.stats().failovers, 0, "quarantine routing is not a failover");

    // A second sweep is idempotent: the quarantined replica is skipped,
    // nothing new is quarantined.
    let report = fleet.consensus_check();
    assert!(report.quarantined.is_empty());
    assert_eq!(fleet.stats().quarantined, 1);
}

/// A shard with no replica left answers with a typed error — and other
/// shards keep serving.
#[test]
fn exhausted_shard_is_a_typed_error_and_others_keep_serving() {
    let store = store();
    let truth = ground_truth();
    let n = store.num_nodes() as u64;
    let mut lone = ShardDaemon::spawn();
    let healthy = ShardDaemon::spawn();
    // Shard 0 has a single replica; shard 1 is healthy.
    let topology = vec![vec![lone.addr.clone()], vec![healthy.addr.clone()]];
    // fail fast: a SIGKILLed process cannot come back
    let cfg = FleetConfig { retries: 0, ..Default::default() };
    let fleet = Coordinator::deploy(store, &topology, cfg).unwrap();
    lone.kill9();
    // Shard 0 (rows [0, n/2)) is gone…
    assert!(matches!(fleet.query(0), Err(FleetError::NoHealthyReplica { shard: 0 })));
    // …and a bulk touching it fails the same way, typed.
    assert!(matches!(fleet.bulk(&[0, n - 1]), Err(FleetError::NoHealthyReplica { shard: 0 })));
    // Shard 1 still answers bitwise.
    assert_eq!(fleet.query(n - 1).unwrap().as_slice(), truth.row(n as usize - 1));
    let stats = fleet.stats();
    assert_eq!(stats.dead, 1);
    assert!(stats.failovers >= 1, "the exhausted search is counted: {stats:?}");
}
