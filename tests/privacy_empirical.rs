//! Empirical privacy-machinery checks across crates: Lemma 2's closed-form
//! sensitivity dominates measured sensitivities on benchmark-like graphs,
//! and the end-to-end pipeline's intermediate quantities respect the bounds
//! the Theorem 1 proof relies on.

use gcon::core::propagation::{concat_features, PropagationStep};
use gcon::core::sensitivity::psi_z;
use gcon::graph::normalize::row_stochastic_default;
use gcon::linalg::reduce::{psi_row_distance, row_norms2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lemma 2 on a real benchmark stand-in: remove random edges from the
/// Cora-ML graph and verify ψ(Z) ≤ Ψ(Z) for the multi-scale features.
#[test]
fn lemma2_bound_on_cora_like_graph() {
    let dataset = gcon::datasets::cora_ml(0.08, 23);
    let mut x = dataset.features.clone();
    x.normalize_rows_l2();
    let steps = [PropagationStep::Finite(2), PropagationStep::Infinite];
    let alpha = 0.4;
    let a = row_stochastic_default(&dataset.graph);
    let z = concat_features(&a, &x, alpha, &steps);
    let bound = psi_z(alpha, &steps);
    let edges = dataset.graph.edges();
    let mut rng = StdRng::seed_from_u64(24);
    let mut max_psi: f64 = 0.0;
    for _ in 0..6 {
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        let gp = dataset.graph.with_edge_removed(u, v);
        let zp = concat_features(&row_stochastic_default(&gp), &x, alpha, &steps);
        let psi = psi_row_distance(&z, &zp);
        max_psi = max_psi.max(psi);
        assert!(psi <= bound + 1e-8, "ψ {psi} > Ψ {bound}");
    }
    assert!(max_psi > 0.0, "edge removals should actually change Z");
}

/// The ‖z_i‖ ≤ 1 invariant the c_θ analysis (Lemma 9) relies on: rows of
/// the concatenated features keep unit-bounded norms after propagation.
#[test]
fn feature_rows_stay_unit_bounded_through_pipeline() {
    let dataset = gcon::datasets::citeseer(0.08, 25);
    let mut x = dataset.features.clone();
    x.normalize_rows_l2();
    let a = row_stochastic_default(&dataset.graph);
    for steps in [
        vec![PropagationStep::Finite(1)],
        vec![PropagationStep::Finite(5), PropagationStep::Infinite],
        vec![PropagationStep::Finite(0), PropagationStep::Finite(2), PropagationStep::Finite(10)],
    ] {
        let z = concat_features(&a, &x, 0.3, &steps);
        for n in row_norms2(&z) {
            assert!(n <= 1.0 + 1e-9, "row norm {n} > 1 for steps {steps:?}");
        }
    }
}

/// The ‖θ_j‖ ≤ c_θ high-probability bound (Lemma 9): trained parameter
/// columns should respect the calibrated c_θ (violation probability ≤ δ;
/// with δ = 1e-3 over a handful of runs a violation would be a red flag).
#[test]
fn trained_theta_columns_respect_c_theta() {
    use gcon::prelude::*;
    let dataset = gcon::datasets::two_moons_graph(27);
    let mut cfg = GconConfig::default();
    cfg.encoder.epochs = 40;
    cfg.optimizer.max_iters = 500;
    for seed in 0..4 {
        let mut rng = StdRng::seed_from_u64(700 + seed);
        let model = train_gcon(
            &cfg,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            1.0,
            1e-3,
            &mut rng,
        );
        let c_theta = model.report.params.c_theta;
        for j in 0..dataset.num_classes {
            let col = model.theta.col(j);
            let norm = gcon::linalg::vecops::norm2(&col);
            assert!(
                norm <= c_theta + 1e-9,
                "‖θ_{j}‖ = {norm} exceeds c_θ = {c_theta} (seed {seed})"
            );
        }
    }
}

/// Erlang-radius noise: the fraction of columns whose β‖b‖ exceeds c_sf
/// should be ≤ δ/c by construction (Eq. 21) — checked by Monte Carlo.
#[test]
fn noise_radius_exceeds_csf_with_probability_at_most_delta_over_c() {
    use gcon::core::noise::sample_noise_matrix;
    use gcon::dp::special::reg_gamma_p_inverse;
    let (d, c) = (24usize, 4usize);
    let delta = 0.05; // large δ so the Monte Carlo estimate is meaningful
    let beta = 1.7;
    let csf = reg_gamma_p_inverse(d as f64, 1.0 - delta / c as f64);
    let mut rng = StdRng::seed_from_u64(29);
    let trials = 4000;
    let mut exceed = 0usize;
    for _ in 0..trials {
        let b = sample_noise_matrix(d, c, beta, &mut rng);
        for j in 0..c {
            let norm = gcon::linalg::vecops::norm2(&b.col(j));
            if beta * norm > csf {
                exceed += 1;
            }
        }
    }
    let rate = exceed as f64 / (trials * c) as f64;
    let target = delta / c as f64;
    assert!(rate <= target * 1.3 + 0.002, "exceed rate {rate} vs design target {target}");
}
