//! Multi-process fleet conformance suite: spawns a real [`Coordinator`]
//! over real `gcond --shard` worker processes and proves the fleet
//! acceptance contract end to end:
//!
//! - fleet answers (single and bulk, any shard/replica topology) are
//!   **bitwise identical** to the single-process serving store — and, for
//!   the f64 store, to `gcon-core::infer` itself;
//! - the contract holds across a `shards × replicas × dtype` matrix, and
//!   under concurrent clients sharing one coordinator;
//! - routing is exact at shard boundaries (first/last row of every
//!   range), and out-of-range ids get typed errors, not crossed wires.

use gcon::core::infer::private_logits;
use gcon::core::train::train_gcon;
use gcon::core::{GconConfig, TrainedGcon};
use gcon::graph::Graph;
use gcon::linalg::Mat;
use gcon::serve::{Coordinator, FleetConfig, FleetError, ServingMode, ServingModel, StoreDtype};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;

/// Train once per test binary; both store dtypes are built from the same
/// trained model so every matrix leg shares one ground truth.
fn fixture() -> &'static (TrainedGcon, Graph, Mat, ServingModel, ServingModel) {
    static FIXTURE: OnceLock<(TrainedGcon, Graph, Mat, ServingModel, ServingModel)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = gcon::datasets::two_moons_graph(7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut config = GconConfig::default();
        config.encoder.epochs = 10;
        config.optimizer.max_iters = 60;
        let model = train_gcon(
            &config,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            2.0,
            dataset.default_delta(),
            &mut rng,
        );
        let f64_store = ServingModel::build_with_dtype(
            &model,
            &dataset.graph,
            &dataset.features,
            ServingMode::Private,
            StoreDtype::F64,
        );
        let f32_store = ServingModel::build_with_dtype(
            &model,
            &dataset.graph,
            &dataset.features,
            ServingMode::Private,
            StoreDtype::F32,
        );
        (model, dataset.graph, dataset.features, f64_store, f32_store)
    })
}

/// A running `gcond --shard` worker child on an ephemeral port; killed on
/// drop so failing tests don't leak processes.
struct ShardDaemon {
    child: Child,
    addr: String,
}

impl ShardDaemon {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_gcond"))
            .arg("--shard")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawning gcond --shard");
        let stdout = child.stdout.take().expect("gcond stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("reading gcond banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected gcond banner: {line:?}"))
            .to_string();
        Self { child, addr }
    }
}

impl Drop for ShardDaemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `shards × replicas` worker processes and shapes their addresses
/// into a deploy topology. The daemons must outlive the coordinator.
fn spawn_fleet(shards: usize, replicas: usize) -> (Vec<ShardDaemon>, Vec<Vec<String>>) {
    let daemons: Vec<ShardDaemon> = (0..shards * replicas).map(|_| ShardDaemon::spawn()).collect();
    let topology = (0..shards)
        .map(|s| (0..replicas).map(|r| daemons[s * replicas + r].addr.clone()).collect())
        .collect();
    (daemons, topology)
}

/// The conformance matrix: every (shards, replicas) topology × store
/// dtype must answer single and bulk queries bitwise equal to the
/// in-process store — and the f64 store is itself pinned bitwise to
/// `infer::private_logits`, closing the loop fleet → store → infer.
#[test]
fn fleet_matches_single_process_bitwise_across_topologies_and_dtypes() {
    let (model, graph, x, f64_store, f32_store) = fixture();
    let reference = private_logits(model, graph, x);
    let n = graph.num_nodes();

    for (shards, replicas) in [(1usize, 1usize), (2, 1), (2, 2), (3, 1)] {
        for store in [f64_store, f32_store] {
            let dtype = store.store_dtype();
            let (daemons, topology) = spawn_fleet(shards, replicas);
            let fleet = Coordinator::deploy(store, &topology, FleetConfig::default())
                .unwrap_or_else(|e| panic!("deploy {shards}x{replicas} {dtype:?}: {e}"));
            assert_eq!(fleet.num_nodes() as usize, n);

            // The in-process ground truth for this dtype.
            let mut session = store.session();
            let in_process = session.logits_batch(&(0..n).collect::<Vec<_>>()).clone();
            if dtype == StoreDtype::F64 {
                assert_eq!(
                    in_process.as_slice(),
                    reference.as_slice(),
                    "f64 store must itself be bitwise vs infer"
                );
            }

            // Single queries: shard boundaries, interior rows, extremes.
            let k = shards;
            let mut probes = vec![0, n - 1, n / 2];
            for s in 0..k {
                probes.push(s * n / k); // first row of shard s
                probes.push((s + 1) * n / k - 1); // last row of shard s
            }
            for &node in &probes {
                assert_eq!(
                    fleet.query(node as u64).unwrap().as_slice(),
                    in_process.row(node),
                    "{shards}x{replicas} {dtype:?}: node {node} must answer bitwise"
                );
            }

            // A bulk over every node in a shard-interleaving order: the
            // scatter-gather must reassemble rows to request positions.
            let nodes: Vec<u64> = (0..n as u64).rev().collect();
            let bulk = fleet.bulk(&nodes).unwrap();
            for (i, &node) in nodes.iter().enumerate() {
                assert_eq!(
                    bulk.row(i),
                    in_process.row(node as usize),
                    "{shards}x{replicas} {dtype:?}: bulk row {i} (node {node}) must be bitwise"
                );
            }

            assert_eq!(fleet.stats().failovers, 0, "healthy fleet must never fail over");
            drop(fleet);
            drop(daemons);
        }
    }
}

/// Concurrent clients sharing one coordinator (2 shards × 2 replicas):
/// mixed single/bulk traffic from several threads stays bitwise-correct —
/// per-replica connection locking must not cross answers between threads.
#[test]
fn concurrent_clients_through_one_coordinator_stay_bitwise_correct() {
    let (model, graph, x, f64_store, _) = fixture();
    let reference = private_logits(model, graph, x);
    let n = graph.num_nodes();
    let (_daemons, topology) = spawn_fleet(2, 2);
    let fleet = Coordinator::deploy(f64_store, &topology, FleetConfig::default()).unwrap();

    std::thread::scope(|scope| {
        for t in 0..3usize {
            let fleet = &fleet;
            let reference = &reference;
            scope.spawn(move || {
                for q in 0..25 {
                    let node = (t * 37 + q * 11) % n;
                    assert_eq!(
                        fleet.query(node as u64).unwrap().as_slice(),
                        reference.row(node),
                        "thread {t}: node {node} must answer bitwise under concurrency"
                    );
                }
                // A striped bulk crossing both shards.
                let nodes: Vec<u64> = (0..n as u64).filter(|v| v % 3 == t as u64).collect();
                let bulk = fleet.bulk(&nodes).unwrap();
                for (i, &node) in nodes.iter().enumerate() {
                    assert_eq!(
                        bulk.row(i),
                        reference.row(node as usize),
                        "thread {t}: bulk node {node} must answer bitwise under concurrency"
                    );
                }
            });
        }
    });
    let stats = fleet.stats();
    assert_eq!(stats.failovers, 0);
    assert_eq!(stats.quarantined, 0);
}

/// Routing edges: out-of-range ids are typed errors (single and bulk),
/// never a wrong shard's answer or a hang.
#[test]
fn out_of_range_nodes_get_typed_errors() {
    let (_, graph, _, f64_store, _) = fixture();
    let n = graph.num_nodes() as u64;
    let (_daemons, topology) = spawn_fleet(2, 1);
    let fleet = Coordinator::deploy(f64_store, &topology, FleetConfig::default()).unwrap();
    assert!(matches!(
        fleet.query(n + 3),
        Err(FleetError::NodeOutOfRange { node, nodes }) if node == n + 3 && nodes == n
    ));
    assert!(matches!(
        fleet.bulk(&[0, n]),
        Err(FleetError::NodeOutOfRange { node, nodes }) if node == n && nodes == n
    ));
}
