//! End-to-end integration tests: the full Algorithm 1 pipeline over real
//! (synthetic) datasets, exercising every crate together.

use gcon::baselines::{evaluate_baseline, Baseline};
use gcon::core::infer::{private_predict, public_predict};
use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> GconConfig {
    let mut cfg = GconConfig::default();
    cfg.encoder.epochs = 60;
    cfg.optimizer.max_iters = 600;
    cfg
}

fn test_f1(dataset: &Dataset, pred: &[usize]) -> f64 {
    let test: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
    micro_f1(&test, &dataset.test_labels())
}

fn train(dataset: &Dataset, eps: f64, seed: u64) -> TrainedGcon {
    let mut rng = StdRng::seed_from_u64(seed);
    train_gcon(
        &fast_config(),
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        eps,
        dataset.default_delta(),
        &mut rng,
    )
}

#[test]
fn gcon_beats_majority_floor_on_homophilous_graph() {
    let dataset = gcon::datasets::two_moons_graph(1);
    let model = train(&dataset, 2.0, 2);
    let f1 = test_f1(&dataset, &private_predict(&model, &dataset.graph, &dataset.features));
    assert!(f1 > 0.6, "micro-F1 {f1} not above the 0.5 majority floor");
}

#[test]
fn utility_improves_from_tiny_to_generous_budget() {
    // Average over seeds so objective-perturbation noise does not flake.
    let dataset = gcon::datasets::two_moons_graph(3);
    let avg = |eps: f64| -> f64 {
        (0..3)
            .map(|s| {
                let model = train(&dataset, eps, 100 + s);
                test_f1(&dataset, &private_predict(&model, &dataset.graph, &dataset.features))
            })
            .sum::<f64>()
            / 3.0
    };
    let tight = avg(0.05);
    let loose = avg(4.0);
    assert!(loose >= tight - 0.02, "utility at ε=4 ({loose}) should not trail ε=0.05 ({tight})");
}

#[test]
fn gcon_outperforms_dpgcn_at_moderate_budget() {
    // The paper's headline comparison (Figure 1): adjacency perturbation
    // destroys the aggregation signal at small ε; objective perturbation
    // preserves it.
    let dataset = gcon::datasets::cora_ml(0.12, 5);
    let delta = dataset.default_delta();
    let eps = 1.0;
    let gcon_avg: f64 = (0..3)
        .map(|s| {
            let mut cfg = fast_config();
            cfg.alpha = 0.8; // the paper's best Cora-ML setting (Figure 4)
            cfg.alpha_inference = 0.8;
            let mut rng = StdRng::seed_from_u64(300 + s);
            let model = train_gcon(
                &cfg,
                &dataset.graph,
                &dataset.features,
                &dataset.labels,
                &dataset.split.train,
                dataset.num_classes,
                eps,
                delta,
                &mut rng,
            );
            test_f1(&dataset, &private_predict(&model, &dataset.graph, &dataset.features))
        })
        .sum::<f64>()
        / 3.0;
    let dpgcn_avg: f64 = (0..3)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(400 + s);
            evaluate_baseline(Baseline::Dpgcn, &dataset, eps, delta, &mut rng)
        })
        .sum::<f64>()
        / 3.0;
    assert!(
        gcon_avg > dpgcn_avg,
        "GCON ({gcon_avg:.3}) should beat DPGCN ({dpgcn_avg:.3}) at ε = 1"
    );
}

#[test]
fn training_is_deterministic_under_fixed_seed() {
    let dataset = gcon::datasets::two_moons_graph(7);
    let a = train(&dataset, 1.0, 9);
    let b = train(&dataset, 1.0, 9);
    assert_eq!(a.theta.as_slice(), b.theta.as_slice());
    assert_eq!(a.report.params.beta, b.report.params.beta);
}

#[test]
fn different_noise_draws_give_different_models() {
    let dataset = gcon::datasets::two_moons_graph(7);
    let a = train(&dataset, 1.0, 10);
    let b = train(&dataset, 1.0, 11);
    assert_ne!(a.theta.as_slice(), b.theta.as_slice());
}

#[test]
fn model_shapes_and_report_consistency() {
    let dataset = gcon::datasets::two_moons_graph(13);
    let model = train(&dataset, 2.0, 14);
    let d = model.config.steps.len() * model.encoder.d1();
    assert_eq!(model.theta.shape(), (d, dataset.num_classes));
    assert_eq!(model.dim(), d);
    assert_eq!(model.report.eps, 2.0);
    assert!(model.report.params.beta > 0.0);
    assert!(model.final_grad_norm < 1e-3, "optimizer did not converge");
    // Expanded training set: n1 = n by default.
    assert_eq!(model.report.n1, dataset.num_nodes());
}

#[test]
fn public_inference_at_least_matches_private_on_average() {
    // Figure 2 vs Figure 3: the public test graph gives the model its full
    // multi-hop propagation, which should not hurt.
    let dataset = gcon::datasets::two_moons_graph(15);
    let mut priv_sum = 0.0;
    let mut pub_sum = 0.0;
    for s in 0..3 {
        let model = train(&dataset, 4.0, 500 + s);
        priv_sum += test_f1(&dataset, &private_predict(&model, &dataset.graph, &dataset.features));
        pub_sum += test_f1(&dataset, &public_predict(&model, &dataset.graph, &dataset.features));
    }
    assert!(
        pub_sum >= priv_sum - 0.15,
        "public ({pub_sum}) unexpectedly far below private ({priv_sum})"
    );
}

#[test]
fn heterophilous_graph_still_trains() {
    let dataset = gcon::datasets::actor(0.06, 17);
    let model = train(&dataset, 4.0, 18);
    let f1 = test_f1(&dataset, &private_predict(&model, &dataset.graph, &dataset.features));
    // 5 classes → 0.2 chance floor; features carry some signal.
    assert!(f1 > 0.2, "actor micro-F1 {f1} at chance level");
}

#[test]
fn zero_propagation_needs_no_noise_and_runs() {
    let dataset = gcon::datasets::two_moons_graph(19);
    let mut cfg = fast_config();
    cfg.steps = vec![PropagationStep::Finite(0)];
    let mut rng = StdRng::seed_from_u64(20);
    let model = train_gcon(
        &cfg,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        0.5,
        dataset.default_delta(),
        &mut rng,
    );
    assert!(model.report.params.is_noise_free());
    assert_eq!(model.report.psi_z, 0.0);
    let f1 = test_f1(&dataset, &private_predict(&model, &dataset.graph, &dataset.features));
    assert!(f1 > 0.5, "m=0 (MLP-equivalent) micro-F1 {f1}");
}
