//! Property tests for the shared runtime layer: the buffer-reusing `_into`
//! kernels and the single-pass multi-scale propagation sweep must be
//! element-wise equal to their allocating / per-scale reference forms, and
//! the sweep must cost `max(m_i)` sparse products rather than `Σ m_i`.

use gcon::core::propagation::{
    propagate, propagate_into, propagate_multi, propagate_with_solver, PprSolver, PropagationStep,
};
use gcon::graph::normalize::row_stochastic_default;
use gcon::graph::Csr;
use gcon::linalg::{ops, Mat};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random CSR with ~`density` fill, entries in (−1, 1).
fn random_csr(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Csr {
    let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); rows];
    for row in entries.iter_mut() {
        for j in 0..cols as u32 {
            if rng.gen::<f64>() < density {
                row.push((j, rng.gen_range(-1.0..1.0)));
            }
        }
    }
    Csr::from_row_entries(rows, cols, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `spmm_into` must equal the allocating `spmm` bit-for-bit on random
    /// sparse×dense products, including when the output buffer arrives
    /// pre-filled with stale values of a different shape.
    #[test]
    fn spmm_into_matches_allocating(
        seed in 0u64..1000,
        n in 1usize..60,
        k in 1usize..40,
        d in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = random_csr(n, k, 0.2, &mut rng);
        let b = Mat::uniform(k, d, 1.0, &mut rng);
        let fresh = sp.spmm(&b);
        // Stale buffer of a different shape, full of garbage.
        let mut reused = Mat::full(3, 7, f64::NAN);
        sp.spmm_into(&b, &mut reused);
        prop_assert_eq!(reused.shape(), (n, d));
        for (x, y) in fresh.as_slice().iter().zip(reused.as_slice()) {
            prop_assert!(x.to_bits() == y.to_bits(), "{x} vs {y}");
        }
    }

    /// `matmul_into` / `matmul_bt_into` / `t_matmul_into` match their
    /// allocating counterparts bit-for-bit on random dense inputs.
    #[test]
    fn matmul_into_matches_allocating(
        seed in 0u64..1000,
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..24,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mat::uniform(m, k, 1.0, &mut rng);
        let b = Mat::uniform(k, n, 1.0, &mut rng);
        let mut out = Mat::full(2, 2, f64::NAN);
        ops::matmul_into(&a, &b, &mut out);
        prop_assert_eq!(&ops::matmul(&a, &b), &out);

        let bt = Mat::uniform(n, k, 1.0, &mut rng);
        ops::matmul_bt_into(&a, &bt, &mut out);
        prop_assert_eq!(&ops::matmul_bt(&a, &bt), &out);

        let at = Mat::uniform(m, n, 1.0, &mut rng);
        ops::t_matmul_into(&a, &at, &mut out);
        prop_assert_eq!(&ops::t_matmul(&a, &at), &out);
    }

    /// `propagate_into` (ping-pong buffers) equals the allocating
    /// `propagate` bit-for-bit, with buffers reused across disparate calls.
    #[test]
    fn propagate_into_matches_allocating(
        seed in 0u64..500,
        n in 2usize..40,
        d in 1usize..8,
        m in 0usize..12,
        alpha in 0.05f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gcon::graph::generators::erdos_renyi_gnm(n, 2 * n, &mut rng);
        let a = row_stochastic_default(&g);
        let x = Mat::uniform(n, d, 1.0, &mut rng);
        let mut z = Mat::full(1, 1, f64::NAN);
        let mut scratch = Mat::full(5, 2, f64::NAN);
        for step in [PropagationStep::Finite(m), PropagationStep::Infinite] {
            // `propagate_into` is the power-path primitive, so pin the
            // reference to the power solver (`propagate`'s Auto selection
            // may route small-α ∞ steps to CGNR, which only agrees to
            // solver tolerance, not bit-for-bit).
            let reference = propagate_with_solver(&a, &x, alpha, step, PprSolver::Power);
            propagate_into(&a, &x, alpha, step, &mut z, &mut scratch);
            for (u, v) in reference.as_slice().iter().zip(z.as_slice()) {
                prop_assert!(u.to_bits() == v.to_bits(), "step {step}: {u} vs {v}");
            }
        }
    }

    /// The single-pass `propagate_multi` sweep is element-wise equal
    /// (≤ 1e-12; finite scales are bit-identical) to per-scale `propagate`
    /// over random finite scale sets, in arbitrary order with duplicates.
    #[test]
    fn propagate_multi_matches_per_scale(
        seed in 0u64..500,
        n in 2usize..40,
        d in 1usize..6,
        m1 in 0usize..10,
        m2 in 0usize..10,
        m3 in 0usize..10,
        alpha in 0.05f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gcon::graph::generators::erdos_renyi_gnm(n, 2 * n, &mut rng);
        let a = row_stochastic_default(&g);
        let x = Mat::uniform(n, d, 1.0, &mut rng);
        let steps = [
            PropagationStep::Finite(m1),
            PropagationStep::Finite(m2),
            PropagationStep::Finite(m3),
        ];
        let multi = propagate_multi(&a, &x, alpha, &steps);
        prop_assert_eq!(multi.shape(), (n, 3 * d));
        for (i, &s) in steps.iter().enumerate() {
            let single = propagate(&a, &x, alpha, s);
            for r in 0..n {
                for c in 0..d {
                    let u = single.get(r, c);
                    let v = multi.get(r, i * d + c);
                    prop_assert!((u - v).abs() <= 1e-12, "scale {s}: {u} vs {v}");
                }
            }
        }
    }

    /// With an `∞` entry the sweep's final segment continues from the
    /// largest finite scale; the resulting block must satisfy the PPR
    /// fixed-point system `(I − (1−α)Ã) Z_∞ = α X` to solver tolerance and
    /// agree with per-scale PPR.
    #[test]
    fn propagate_multi_infinite_segment_is_a_ppr_fixed_point(
        seed in 0u64..200,
        n in 2usize..30,
        d in 1usize..5,
        m in 0usize..6,
        alpha in 0.3f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gcon::graph::generators::erdos_renyi_gnm(n, 2 * n, &mut rng);
        let a = row_stochastic_default(&g);
        let x = Mat::uniform(n, d, 1.0, &mut rng);
        let steps = [PropagationStep::Finite(m), PropagationStep::Infinite];
        let multi = propagate_multi(&a, &x, alpha, &steps);
        // Extract the ∞ block.
        let mut z_inf = Mat::zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                z_inf.set(r, c, multi.get(r, d + c));
            }
        }
        // Fixed-point residual.
        let az = a.spmm(&z_inf);
        for r in 0..n {
            for c in 0..d {
                let lhs = z_inf.get(r, c) - (1.0 - alpha) * az.get(r, c);
                prop_assert!(
                    (lhs - alpha * x.get(r, c)).abs() < 1e-7,
                    "residual at ({r},{c})"
                );
            }
        }
        // And it agrees with the stand-alone PPR solve to tolerance.
        let reference = propagate(&a, &x, alpha, PropagationStep::Infinite);
        for (u, v) in reference.as_slice().iter().zip(z_inf.as_slice()) {
            prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }
}

/// Runs every rewritten kernel on fixed awkward-shaped inputs and returns
/// the concatenated little-endian bytes of all results. Shapes are chosen to
/// exceed `PAR_THRESHOLD` (so the pool actually partitions) and to be far
/// from multiples of the MR/NR tile sizes (so tile tails land differently
/// under different partitions).
fn kernel_fingerprint() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(424242);
    let mut bytes = Vec::new();
    fn push(bytes: &mut Vec<u8>, m: &Mat) {
        for v in m.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }

    // Dense GEMM family. The second matmul crosses the KC cache-block
    // boundary so the K-blocked accumulate-into-C path is fingerprinted.
    let a = Mat::uniform(67, 129, 1.0, &mut rng);
    let b = Mat::uniform(129, 61, 1.0, &mut rng);
    push(&mut bytes, &ops::matmul(&a, &b));
    let ak = Mat::uniform(19, ops::KC + 37, 1.0, &mut rng);
    let bk = Mat::uniform(ops::KC + 37, 21, 1.0, &mut rng);
    push(&mut bytes, &ops::matmul(&ak, &bk));
    let xt = Mat::uniform(263, 37, 1.0, &mut rng);
    let grad = Mat::uniform(263, 29, 1.0, &mut rng);
    push(&mut bytes, &ops::t_matmul(&xt, &grad));
    // ~90% ReLU zeros: the adaptive t_matmul routes blocks down the
    // zero-skipping loop, which must be just as partition/tier-stable.
    let mut sparse_acts: Mat = Mat::uniform(263, 37, 1.0, &mut rng);
    sparse_acts.map_inplace(|v| if (v * 1e4).rem_euclid(1.0) < 0.9 { 0.0 } else { v });
    push(&mut bytes, &ops::t_matmul(&sparse_acts, &grad));
    let bt = Mat::uniform(53, 129, 1.0, &mut rng);
    push(&mut bytes, &ops::matmul_bt(&a, &bt));

    // Dispatched vector primitives.
    let va: Vec<f64> = (0..1013).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let vb: Vec<f64> = (0..1013).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut vy = vb.clone();
    gcon::linalg::vecops::axpy(0.37, &va, &mut vy);
    for v in [gcon::linalg::vecops::dot(&va, &vb), gcon::linalg::vecops::norm2(&va)]
        .iter()
        .chain(vy.iter())
    {
        bytes.extend_from_slice(&v.to_le_bytes());
    }

    // Sparse kernels.
    let sp = random_csr(301, 301, 0.05, &mut rng);
    let feats = Mat::uniform(301, 23, 1.0, &mut rng);
    push(&mut bytes, &sp.spmm(&feats));
    let x: Vec<f64> = (0..301).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for v in sp.spmv(&x).iter().chain(sp.spmv_t(&x).iter()) {
        bytes.extend_from_slice(&v.to_le_bytes());
    }

    // Propagation (drives spmm_into through the ping-pong recursion).
    let g = gcon::graph::generators::erdos_renyi_gnm(260, 1500, &mut rng);
    let at = row_stochastic_default(&g);
    let px = Mat::uniform(260, 19, 1.0, &mut rng);
    push(&mut bytes, &propagate(&at, &px, 0.3, PropagationStep::Finite(4)));

    // The f32 kernel family on the same awkward shapes, fingerprinted in
    // raw f32 bits. Appending this to the same fingerprint extends the
    // subprocess matrix below to the full dtype × tier × thread-count cube:
    // determinism is claimed (and pinned) *within* each dtype.
    fn push32(bytes: &mut Vec<u8>, m: &Mat<f32>) {
        for v in m.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    }
    let (a32, b32) = (a.convert::<f32>(), b.convert::<f32>());
    push32(&mut bytes, &ops::matmul(&a32, &b32));
    // KC-crossing K: the blocked accumulate-into-C path, f32 flavor.
    push32(&mut bytes, &ops::matmul(&ak.convert::<f32>(), &bk.convert::<f32>()));
    let grad32 = grad.convert::<f32>();
    push32(&mut bytes, &ops::t_matmul(&xt.convert::<f32>(), &grad32));
    push32(&mut bytes, &ops::t_matmul(&sparse_acts.convert::<f32>(), &grad32));
    push32(&mut bytes, &ops::matmul_bt(&a32, &bt.convert::<f32>()));

    let va32: Vec<f32> = va.iter().map(|&v| v as f32).collect();
    let vb32: Vec<f32> = vb.iter().map(|&v| v as f32).collect();
    let mut vy32 = vb32.clone();
    gcon::linalg::vecops::axpy(0.37f32, &va32, &mut vy32);
    for v in [gcon::linalg::vecops::dot(&va32, &vb32), gcon::linalg::vecops::norm2(&va32)]
        .iter()
        .chain(vy32.iter())
    {
        bytes.extend_from_slice(&v.to_le_bytes());
    }

    let sp32: Csr<f32> = sp.convert();
    push32(&mut bytes, &sp32.spmm(&feats.convert::<f32>()));
    let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    for v in sp32.spmv(&x32).iter().chain(sp32.spmv_t(&x32).iter()) {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

/// **Determinism policy test.** The tiled kernels reassociate accumulation
/// (so they differ from the old scalar kernels within tolerance), but for a
/// given input the result must be byte-identical over the whole
/// `GCON_KERNEL_TIER × GCON_THREADS` matrix — per dtype: the fingerprint
/// carries an f64 and an f32 section, so one matrix sweep pins the
/// dtype × tier × thread-count cube (no bit relation *across* dtypes is
/// claimed):
///
/// - *across thread counts* — the thread partition decides only *who*
///   computes an output row, never the accumulation order within it;
/// - *across dispatch tiers* — every tier compiles the same source under
///   strict FP semantics (no reassociation, no mul-add contraction), so the
///   documented cross-tier reassociation drift bound is exactly **zero**,
///   and this test asserts that bound by comparing raw bytes across tiers,
///   not just within one.
///
/// Pool width and (env-resolved) tier are latched per process, so the test
/// re-executes itself as a subprocess per matrix cell. Only tiers the host
/// CPU supports are spawned — absent tiers are skipped, not failed.
#[test]
fn kernels_byte_identical_across_thread_counts_and_tiers() {
    if let Ok(path) = std::env::var("GCON_FINGERPRINT_OUT") {
        std::fs::write(path, kernel_fingerprint()).expect("fingerprint write failed");
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let mut outputs = Vec::new();
    for &tier in gcon_runtime::available_tiers() {
        for threads in ["1", "2", "4"] {
            let path = std::env::temp_dir()
                .join(format!("gcon-fingerprint-{}-{tier}-t{threads}", std::process::id()));
            let status = std::process::Command::new(&exe)
                .args([
                    "kernels_byte_identical_across_thread_counts_and_tiers",
                    "--exact",
                    "--test-threads=1",
                ])
                .env("GCON_THREADS", threads)
                .env("GCON_KERNEL_TIER", tier.name())
                .env("GCON_FINGERPRINT_OUT", &path)
                .status()
                .expect("failed to respawn test binary");
            assert!(status.success(), "tier={tier} GCON_THREADS={threads} child failed");
            let data = std::fs::read(&path).expect("fingerprint read failed");
            assert!(!data.is_empty(), "tier={tier} GCON_THREADS={threads} produced no fingerprint");
            let _ = std::fs::remove_file(&path);
            outputs.push((tier, threads, data));
        }
    }
    let (t0, w0, reference) = &outputs[0];
    for (tier, threads, data) in &outputs[1..] {
        assert!(
            data == reference,
            "kernel results differ between ({t0}, GCON_THREADS={w0}) and \
             ({tier}, GCON_THREADS={threads}) — the zero cross-tier drift bound is violated"
        );
    }
}

/// **Graceful tier degradation.** `GCON_KERNEL_TIER` requests are clamped to
/// the host's capabilities with a warning — a child asked for `avx512`
/// resolves to `min(avx512, max_available)` and, when that clamps, says so
/// on stderr. Unrecognized values warn and fall back to detection. (The
/// clamp *rule* for every host×request combination is unit-tested in
/// `gcon-runtime`; this exercises the env path end-to-end as far as this
/// host's CPU allows.)
#[test]
fn kernel_tier_env_requests_clamp_to_available() {
    if std::env::var("GCON_TIER_PROBE").is_ok() {
        // Child mode: print the resolved tier for the parent to inspect.
        println!("resolved-tier={}", gcon_runtime::kernel_tier());
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let max = gcon_runtime::max_available_tier();
    let expect_clamp = max < gcon_runtime::KernelTier::Avx512;
    for (request, expected, warn_needle) in [
        // An avx512 request resolves to the best the host has; clamping
        // must be reported.
        ("avx512", max.min(gcon_runtime::KernelTier::Avx512), "clamping"),
        // Scalar is available everywhere: honored verbatim, no warning.
        ("scalar", gcon_runtime::KernelTier::Scalar, ""),
        // Garbage warns and falls back to detection.
        ("turbo9000", max, "unrecognized"),
    ] {
        let out = std::process::Command::new(&exe)
            .args([
                "kernel_tier_env_requests_clamp_to_available",
                "--exact",
                "--test-threads=1",
                // The child harness must not swallow the probe line / the
                // runtime's clamp warning.
                "--nocapture",
            ])
            .env("GCON_KERNEL_TIER", request)
            .env("GCON_TIER_PROBE", "1")
            .output()
            .expect("failed to respawn test binary");
        assert!(out.status.success(), "GCON_KERNEL_TIER={request} child failed");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("resolved-tier={expected}")),
            "GCON_KERNEL_TIER={request}: expected {expected}, stdout: {stdout}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        let should_warn = match warn_needle {
            "clamping" => expect_clamp,
            "unrecognized" => true,
            _ => false,
        };
        if should_warn {
            assert!(
                stderr.contains(warn_needle),
                "GCON_KERNEL_TIER={request}: expected a {warn_needle:?} warning, \
                 stderr: {stderr}"
            );
        } else if warn_needle == "clamping" {
            // Request satisfiable on this host: must stay silent.
            assert!(
                !stderr.contains("clamping"),
                "GCON_KERNEL_TIER={request} warned without need: {stderr}"
            );
        }
    }
}

#[test]
fn degenerate_shapes_are_supported() {
    // rows == 0.
    let empty_csr = Csr::from_row_entries(0, 5, vec![]);
    let b = Mat::zeros(5, 3);
    let mut out = Mat::full(2, 2, f64::NAN);
    empty_csr.spmm_into(&b, &mut out);
    assert_eq!(out.shape(), (0, 3));

    // d == 0 (empty feature dimension).
    let csr = Csr::eye(4);
    let b0 = Mat::zeros(4, 0);
    csr.spmm_into(&b0, &mut out);
    assert_eq!(out.shape(), (4, 0));
    assert_eq!(csr.spmm(&b0).shape(), (4, 0));

    // Dense kernels on empty shapes.
    let a = Mat::zeros(0, 7);
    let c = Mat::zeros(7, 3);
    let mut dense_out = Mat::full(1, 1, 0.5);
    ops::matmul_into(&a, &c, &mut dense_out);
    assert_eq!(dense_out.shape(), (0, 3));
    ops::matmul_into(&Mat::zeros(3, 0), &Mat::zeros(0, 2), &mut dense_out);
    assert_eq!(dense_out.shape(), (3, 2));
    assert!(dense_out.as_slice().iter().all(|&v| v == 0.0));
}
