//! `gcond` — the GCON serving daemon: answers node-classification queries
//! over TCP from a frozen feature store.
//!
//! ```text
//! # O(open) restart from a persisted store (the production path):
//! gcond --store store.gconstore [--addr 127.0.0.1:7464]
//!
//! # Cold start: build the store from a model artifact + dataset, serve it,
//! # and optionally persist it for the next (fast) restart:
//! gcond --model model.gcon --dataset cora-ml [--mode private|public]
//!       [--dtype f64|f32] [--scale 0.25] [--seed 1]
//!       [--save-store store.gconstore] [--addr 127.0.0.1:7464]
//!
//! # Fleet shard worker: starts with NO store; a coordinator ships it a
//! # row-range slice over the wire (ShardAssign) and it answers
//! # ShardQuery/ShardFingerprint for that range until killed:
//! gcond --shard [--addr 127.0.0.1:0]
//! ```
//!
//! On success the daemon prints exactly one line `listening on <ADDR>` to
//! stdout (with the ephemeral port resolved when `--addr` ends in `:0`) and
//! serves until killed. Tuning: `GCON_SERVER_MAX_INFLIGHT`,
//! `GCON_SERVER_READ_TIMEOUT_MS`, `GCON_SERVER_WRITE_TIMEOUT_MS`,
//! `GCON_SERVER_MAX_FRAME`, plus the usual `GCON_THREADS` /
//! `GCON_KERNEL_TIER` compute knobs.

use gcon::core::serialize;
use gcon::serve::{Server, ServerConfig, ServingMode, ServingModel, ShardWorker, StoreDtype};
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

/// Parsed `--key value` arguments (same grammar as the `gcon` CLI).
#[derive(Debug, Default)]
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Flags that take no value (presence is the value).
    const BOOLEAN: &'static [&'static str] = &["shard"];

    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = argv.iter().peekable();
        while let Some(k) = it.next() {
            let key = k.strip_prefix("--").ok_or_else(|| format!("expected --flag, got `{k}`"))?;
            let val = if Self::BOOLEAN.contains(&key) {
                "true".to_string()
            } else {
                it.next().ok_or_else(|| format!("flag --{key} needs a value"))?.clone()
            };
            if flags.insert(key.to_string(), val).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }
}

/// Obtains the serving store per the CLI contract: `--store` loads a
/// persisted artifact (no propagation at all), `--model` + `--dataset`
/// builds one from scratch.
fn obtain_store(args: &Args) -> Result<ServingModel, String> {
    match (args.get("store"), args.get("model")) {
        (Some(path), None) => {
            ServingModel::load(path).map_err(|e| format!("loading store `{path}`: {e}"))
        }
        (None, Some(model_path)) => {
            let model = serialize::load(model_path)
                .map_err(|e| format!("loading model `{model_path}`: {e}"))?;
            let name = args.get("dataset").ok_or("--model also needs --dataset")?;
            let scale = args
                .get("scale")
                .map_or(Ok(0.25), |v| v.parse().map_err(|_| "--scale: not a number".to_string()))?;
            let seed = args
                .get("seed")
                .map_or(Ok(1), |v| v.parse().map_err(|_| "--seed: not an integer".to_string()))?;
            let dataset = match name {
                "cora-ml" => gcon::datasets::cora_ml(scale, seed),
                "citeseer" => gcon::datasets::citeseer(scale, seed),
                "pubmed" => gcon::datasets::pubmed(scale, seed),
                "actor" => gcon::datasets::actor(scale, seed),
                "two-moons" => gcon::datasets::two_moons_graph(seed),
                other => {
                    return Err(format!(
                        "unknown dataset `{other}` \
                         (expected cora-ml|citeseer|pubmed|actor|two-moons)"
                    ))
                }
            };
            let mode = match args.get("mode").unwrap_or("private") {
                "private" => ServingMode::Private,
                "public" => ServingMode::Public,
                other => return Err(format!("--mode must be private|public, got `{other}`")),
            };
            let dtype = match args.get("dtype") {
                None => StoreDtype::from_env(),
                Some("f64") => StoreDtype::F64,
                Some("f32") => StoreDtype::F32,
                Some(other) => return Err(format!("--dtype must be f64|f32, got `{other}`")),
            };
            let store = ServingModel::build_with_dtype(
                &model,
                &dataset.graph,
                &dataset.features,
                mode,
                dtype,
            );
            if let Some(out) = args.get("save-store") {
                store.save(out).map_err(|e| format!("saving store `{out}`: {e}"))?;
            }
            Ok(store)
        }
        (Some(_), Some(_)) => Err("--store and --model are mutually exclusive".into()),
        (None, None) => Err("need --store FILE, or --model FILE with --dataset NAME".into()),
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7464");
    let config = ServerConfig::from_env();
    if args.get("shard").is_some() {
        if args.get("store").is_some() || args.get("model").is_some() {
            return Err("--shard workers take no store; a coordinator assigns one".into());
        }
        let worker =
            ShardWorker::bind(config, addr).map_err(|e| format!("binding `{addr}`: {e}"))?;
        println!("listening on {}", worker.local_addr());
        std::io::stdout().flush().ok();
        return worker.run().map_err(|e| format!("serving: {e}"));
    }
    let store = obtain_store(&args)?;
    let server =
        Server::bind(&store, config, addr).map_err(|e| format!("binding `{addr}`: {e}"))?;
    // The contract tests and tooling rely on: one line, flushed, with the
    // resolved address (so `--addr host:0` callers learn the real port).
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    server.run().map_err(|e| format!("serving: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gcond: {msg}");
            eprintln!(
                "usage: gcond --store FILE [--addr HOST:PORT]\n\
                 \u{20}      gcond --model FILE --dataset NAME [--mode private|public] \
                 [--dtype f64|f32] [--scale S] [--seed N] [--save-store FILE] [--addr HOST:PORT]\n\
                 \u{20}      gcond --shard [--addr HOST:PORT]"
            );
            ExitCode::FAILURE
        }
    }
}
