//! `gcon` — command-line interface for the library's train → release →
//! infer workflow.
//!
//! ```text
//! gcon train  --dataset cora-ml --eps 1.0 --out model.gcon [--scale 0.25]
//!             [--alpha 0.8] [--steps 2] [--lambda 0.2] [--clip-p 0.5]
//!             [--omega 0.9] [--loss msm|huber:<δ>] [--seed 1]
//! gcon infer  --model model.gcon --dataset cora-ml [--mode private|public]
//!             [--scale 0.25] [--seed 1]
//! gcon report --model model.gcon
//! ```
//!
//! The dataset flags regenerate the same deterministic synthetic stand-in
//! the harness uses (same `--scale`/`--seed` ⇒ same graph), so `infer` can
//! evaluate an artifact produced by an earlier `train` run.

use gcon::core::serialize;
use gcon::core::{GconConfig, LossKind, PropagationStep};
use gcon::datasets::{metrics, Dataset};
use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

/// Parsed `--key value` arguments after the subcommand.
#[derive(Debug, Default)]
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs; rejects dangling keys and bare words.
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut it = argv.iter();
        while let Some(k) = it.next() {
            let key = k.strip_prefix("--").ok_or_else(|| format!("expected --flag, got `{k}`"))?;
            let val = it.next().ok_or_else(|| format!("flag --{key} needs a value"))?;
            if flags.insert(key.to_string(), val.clone()).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn parse_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not a number: `{v}`")),
        }
    }

    fn parse_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not an integer: `{v}`")),
        }
    }
}

/// Parses the `--loss` flag: `msm` or `huber:<δ>`.
fn parse_loss(s: &str) -> Result<LossKind, String> {
    if s == "msm" {
        return Ok(LossKind::MultiLabelSoftMargin);
    }
    if let Some(d) = s.strip_prefix("huber:") {
        let delta: f64 = d.parse().map_err(|_| format!("--loss huber:<δ>: bad δ `{d}`"))?;
        if delta <= 0.0 {
            return Err("--loss huber δ must be positive".into());
        }
        return Ok(LossKind::PseudoHuber { delta });
    }
    Err(format!("--loss must be `msm` or `huber:<δ>`, got `{s}`"))
}

/// Parses the `--steps` flag: comma-separated `m` values, `inf` allowed.
fn parse_steps(s: &str) -> Result<Vec<PropagationStep>, String> {
    let steps: Option<Vec<PropagationStep>> =
        s.split(',').map(|t| PropagationStep::parse(t.trim())).collect();
    let steps = steps.ok_or_else(|| format!("--steps: bad step list `{s}`"))?;
    if steps.is_empty() {
        return Err("--steps: need at least one step".into());
    }
    Ok(steps)
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let name = args.required("dataset")?;
    let scale = args.parse_f64("scale", 0.25)?;
    let seed = args.parse_u64("seed", 1)?;
    Ok(match name {
        "cora-ml" => gcon::datasets::cora_ml(scale, seed),
        "citeseer" => gcon::datasets::citeseer(scale, seed),
        "pubmed" => gcon::datasets::pubmed(scale, seed),
        "actor" => gcon::datasets::actor(scale, seed),
        "two-moons" => gcon::datasets::two_moons_graph(seed),
        "file" => {
            // Real data from disk: --edges/--features/--labels text files
            // (see gcon::datasets::text_io for the accepted grammars).
            let edges = args.required("edges")?;
            let feats = args.required("features")?;
            let labels = args.required("labels")?;
            let train_frac = args.parse_f64("train-frac", 0.6)?;
            let val_frac = args.parse_f64("val-frac", 0.2)?;
            gcon::datasets::text_io::load_from_files(
                "file",
                std::path::Path::new(edges),
                std::path::Path::new(feats),
                std::path::Path::new(labels),
                train_frac,
                val_frac,
                seed,
            )
            .map_err(|e| format!("loading dataset files: {e}"))?
        }
        other => {
            return Err(format!(
                "unknown dataset `{other}` \
                 (expected cora-ml|citeseer|pubmed|actor|two-moons|file)"
            ))
        }
    })
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let eps = args.required("eps")?.parse::<f64>().map_err(|_| "--eps: not a number")?;
    let out = args.required("out")?;
    let delta = args.parse_f64("delta", dataset.default_delta())?;
    let seed = args.parse_u64("seed", 1)?;

    let mut cfg = GconConfig::default();
    cfg.alpha = args.parse_f64("alpha", cfg.alpha)?;
    cfg.alpha_inference = args.parse_f64("alpha-i", cfg.alpha)?;
    cfg.lambda = args.parse_f64("lambda", cfg.lambda)?;
    cfg.omega = args.parse_f64("omega", cfg.omega)?;
    cfg.clip_p = args.parse_f64("clip-p", cfg.clip_p)?;
    if let Some(s) = args.get("steps") {
        cfg.steps = parse_steps(s)?;
    }
    if let Some(l) = args.get("loss") {
        cfg.loss = parse_loss(l)?;
    }
    cfg.validate()?;

    eprintln!(
        "training GCON on {} (n={}, |E|={}) at (ε={eps}, δ={delta:.3e})…",
        dataset.name,
        dataset.num_nodes(),
        dataset.graph.num_edges()
    );
    let mut rng = StdRng::seed_from_u64(seed + 1000);
    let model = train_gcon(
        &cfg,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        eps,
        delta,
        &mut rng,
    );
    println!("{}", model.report);
    serialize::save(&model, out).map_err(|e| format!("writing {out}: {e}"))?;
    let size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("wrote {out} ({size} bytes)");
    Ok(())
}

fn cmd_infer(args: &Args) -> Result<(), String> {
    let model_path = args.required("model")?;
    let model = serialize::load(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    let dataset = load_dataset(args)?;
    let mode = args.get("mode").unwrap_or("private");
    let pred = match mode {
        "private" => private_predict(&model, &dataset.graph, &dataset.features),
        "public" => public_predict(&model, &dataset.graph, &dataset.features),
        other => return Err(format!("--mode must be private|public, got `{other}`")),
    };
    let test_pred: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
    let gold = dataset.test_labels();
    println!("dataset     : {}", dataset.name);
    println!("mode        : {mode}");
    println!("test nodes  : {}", gold.len());
    println!("micro-F1    : {:.4}", micro_f1(&test_pred, &gold));
    println!("macro-F1    : {:.4}", metrics::macro_f1(&test_pred, &gold, dataset.num_classes));
    println!("trained at  : (ε={}, δ={:.3e})", model.report.eps, model.report.delta);
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let model_path = args.required("model")?;
    let model = serialize::load(model_path).map_err(|e| format!("reading {model_path}: {e}"))?;
    println!("{}", model.report);
    println!("classes           : {}", model.num_classes);
    println!("feature dim d     : {}", model.dim());
    println!("restart α         : {}", model.config.alpha);
    println!(
        "steps m₁…m_s      : {}",
        model.config.steps.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
    );
    println!("loss              : {:?}", model.config.loss);
    println!("Lemma 1 clip p    : {}", model.config.clip_p);
    println!("optimizer iters   : {}", model.opt_iterations);
    println!("final ‖∇L_priv‖   : {:.3e}", model.final_grad_norm);
    Ok(())
}

const USAGE: &str = "usage:
  gcon train  --dataset <name> --eps <ε> --out <path> [options]
  gcon infer  --model <path> --dataset <name> [--mode private|public]
  gcon report --model <path>

datasets: cora-ml | citeseer | pubmed | actor | two-moons
          | file --edges <p> --features <p> --labels <p>
                 [--train-frac 0.6] [--val-frac 0.2]
train options: --delta <δ> --alpha <α> --alpha-i <α_I> --steps <m1,m2,…|inf>
               --lambda <Λ> --omega <ω> --clip-p <p> --loss <msm|huber:δ>
               --scale <f> --seed <n>";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let run = || -> Result<(), String> {
        let args = Args::parse(rest)?;
        match cmd.as_str() {
            "train" => cmd_train(&args),
            "infer" => cmd_infer(&args),
            "report" => cmd_report(&args),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command `{other}`\n{USAGE}")),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_key_value_flags() {
        let a = Args::parse(&argv(&["--eps", "1.5", "--dataset", "cora-ml"])).unwrap();
        assert_eq!(a.get("eps"), Some("1.5"));
        assert_eq!(a.get("dataset"), Some("cora-ml"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn rejects_bare_words_and_dangling_flags() {
        assert!(Args::parse(&argv(&["eps", "1.5"])).is_err());
        assert!(Args::parse(&argv(&["--eps"])).is_err());
        assert!(Args::parse(&argv(&["--eps", "1", "--eps", "2"])).is_err());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let a = Args::parse(&argv(&["--eps", "abc"])).unwrap();
        assert!(a.parse_f64("eps", 1.0).is_err());
        assert_eq!(a.parse_f64("scale", 0.25).unwrap(), 0.25);
        assert_eq!(a.parse_u64("seed", 7).unwrap(), 7);
    }

    #[test]
    fn loss_flag_grammar() {
        assert_eq!(parse_loss("msm").unwrap(), LossKind::MultiLabelSoftMargin);
        assert_eq!(parse_loss("huber:0.3").unwrap(), LossKind::PseudoHuber { delta: 0.3 });
        assert!(parse_loss("huber:-1").is_err());
        assert!(parse_loss("hinge").is_err());
    }

    #[test]
    fn steps_flag_grammar() {
        assert_eq!(
            parse_steps("1, 2, inf").unwrap(),
            vec![PropagationStep::Finite(1), PropagationStep::Finite(2), PropagationStep::Infinite]
        );
        assert!(parse_steps("1, x").is_err());
        assert!(parse_steps("").is_err());
    }

    #[test]
    fn unknown_dataset_rejected() {
        let a = Args::parse(&argv(&["--dataset", "imagenet"])).unwrap();
        assert!(load_dataset(&a).unwrap_err().contains("unknown dataset"));
    }
}
