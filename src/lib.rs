#![warn(missing_docs)]
//! # gcon — Differentially Private GCNs via Objective Perturbation
//!
//! A from-scratch Rust reproduction of *GCON: Differentially Private Graph
//! Convolutional Network via Objective Perturbation* (Wei et al., ICDE 2025),
//! including every substrate the paper depends on and every baseline its
//! evaluation compares against.
//!
//! ## Quickstart
//!
//! ```
//! use gcon::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A small homophilous node-classification dataset.
//! let dataset = gcon::datasets::two_moons_graph(0);
//! let mut rng = StdRng::seed_from_u64(0);
//!
//! // Train under (ε = 2, δ = 1/|E|) edge-level differential privacy.
//! let mut config = GconConfig::default();
//! config.encoder.epochs = 40;          // keep the doctest fast
//! config.optimizer.max_iters = 300;
//! let model = train_gcon(
//!     &config,
//!     &dataset.graph,
//!     &dataset.features,
//!     &dataset.labels,
//!     &dataset.split.train,
//!     dataset.num_classes,
//!     2.0,
//!     dataset.default_delta(),
//!     &mut rng,
//! );
//!
//! // Private inference uses only each query node's own edges (Eq. 16).
//! let pred = private_predict(&model, &dataset.graph, &dataset.features);
//! assert_eq!(pred.len(), dataset.num_nodes());
//! println!("spent ε = {}, β = {}", model.report.eps, model.report.params.beta);
//! ```
//!
//! ## Crate map
//!
//! - [`core`]: the paper's contribution — propagation, convex losses,
//!   Theorem 1 calibration, objective perturbation, inference.
//! - [`graph`]: CSR adjacency, normalizations, homophily, generators.
//! - [`linalg`]: dense matrix substrate.
//! - [`nn`]: manual-gradient MLP stack (encoder + baseline heads).
//! - [`dp`]: mechanisms, Erlang/sphere sampling, RDP accountant.
//! - [`datasets`]: Table II stand-ins, splits, metrics.
//! - [`baselines`]: DP-SGD, DPGCN, LPGNet, GAP, ProGAP, MLP, non-DP GCN.
//! - [`serve`]: batched inference serving — precomputed feature store +
//!   dynamic micro-batcher, bitwise-equal to the `core::infer` entry points.
//! - [`runtime`]: the shared execution layer every kernel above runs on.
//!
//! The layer diagram, buffer-reuse convention, determinism policy and the
//! environment-variable knob table live in `ARCHITECTURE.md` at the
//! repository root.
//!
//! ## Architecture / execution layer
//!
//! All hot kernels in the workspace share one execution substrate,
//! `gcon-runtime` (re-exported here as [`runtime`]):
//!
//! - **Persistent worker pool.** [`runtime::pool()`] lazily spawns one
//!   process-wide set of workers (width from the `GCON_THREADS` environment
//!   variable, default: hardware parallelism) and parks them between jobs.
//!   Kernels submit row-block work through [`runtime::parallel_rows`]; no
//!   kernel spawns threads of its own, so the steady-state cost of a
//!   parallel product is a condvar wake-up rather than per-call thread
//!   creation. Layering: `linalg::ops::{matmul, matmul_bt}` and
//!   `graph::Csr::spmm` parallelize on the pool; `nn`, `core` and
//!   `baselines` inherit it through those kernels.
//! - **Buffer-reusing `_into` kernels.** Every allocating kernel has a twin
//!   writing into a caller-owned [`Mat`](linalg::Mat) that is reshaped in place
//!   (`matmul_into`, `spmm_into`, `forward_into`/`backward_into`,
//!   `softmax_cross_entropy_into`, …). Training loops — the GCON encoder,
//!   the GCN/GAP/ProGAP baselines, `Mlp::train_cross_entropy` — hoist their
//!   buffers (`nn::MlpWorkspace`) outside the epoch loop, so steady-state
//!   epochs perform no matrix allocation.
//! - **Single-pass multi-scale propagation.** The recursion
//!   `Z_m = (1−α)ÃZ_{m−1} + αX` makes each scale a strict continuation of
//!   the previous one, so `core::propagation::propagate_multi` computes all
//!   requested scales `{m₁ < … < m_s}` (Eq. 9–11) in one sweep: `max(mᵢ)`
//!   sparse products instead of `Σ mᵢ`, with PPR `∞` as the final
//!   fixed-point segment. `concat_features` — and with it training, tuning,
//!   public inference and the figure harnesses — ride this sweep.
//! - **Multi-RHS PPR solver.** The PPR limit can alternatively be solved by
//!   `core::propagation::propagate_ppr_cgnr`: a block CGNR
//!   (`linalg::solve::block_cgnr`) iterating every feature column at once —
//!   one `Ã` and one `Ãᵀ` product per iteration total, the transposed
//!   product running the pooled spmm kernel on a precomputed
//!   `graph::Csr::transpose`. `core::propagation::PprSolver` (overridable
//!   via `GconConfig::ppr_solver`) selects between it and the power
//!   iteration; a non-converged CGNR solve always falls back to the power
//!   iteration rather than returning an unconverged iterate.

pub use gcon_baselines as baselines;
pub use gcon_core as core;
pub use gcon_datasets as datasets;
pub use gcon_dp as dp;
pub use gcon_graph as graph;
pub use gcon_linalg as linalg;
pub use gcon_nn as nn;
pub use gcon_runtime as runtime;
pub use gcon_serve as serve;

/// The most common imports for using GCON end to end.
pub mod prelude {
    pub use gcon_core::infer::{private_predict, public_predict};
    pub use gcon_core::train::train_gcon;
    pub use gcon_core::{GconConfig, LossKind, PprSolver, PropagationStep, TrainedGcon};
    pub use gcon_datasets::metrics::micro_f1;
    pub use gcon_datasets::Dataset;
    pub use gcon_graph::Graph;
    pub use gcon_linalg::Mat;
    pub use gcon_serve::{BatchConfig, BatchQueue, ServingMode, ServingModel, StoreDtype};
}
