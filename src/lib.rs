#![warn(missing_docs)]
//! # gcon — Differentially Private GCNs via Objective Perturbation
//!
//! A from-scratch Rust reproduction of *GCON: Differentially Private Graph
//! Convolutional Network via Objective Perturbation* (Wei et al., ICDE 2025),
//! including every substrate the paper depends on and every baseline its
//! evaluation compares against.
//!
//! ## Quickstart
//!
//! ```
//! use gcon::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A small homophilous node-classification dataset.
//! let dataset = gcon::datasets::two_moons_graph(0);
//! let mut rng = StdRng::seed_from_u64(0);
//!
//! // Train under (ε = 2, δ = 1/|E|) edge-level differential privacy.
//! let mut config = GconConfig::default();
//! config.encoder.epochs = 40;          // keep the doctest fast
//! config.optimizer.max_iters = 300;
//! let model = train_gcon(
//!     &config,
//!     &dataset.graph,
//!     &dataset.features,
//!     &dataset.labels,
//!     &dataset.split.train,
//!     dataset.num_classes,
//!     2.0,
//!     dataset.default_delta(),
//!     &mut rng,
//! );
//!
//! // Private inference uses only each query node's own edges (Eq. 16).
//! let pred = private_predict(&model, &dataset.graph, &dataset.features);
//! assert_eq!(pred.len(), dataset.num_nodes());
//! println!("spent ε = {}, β = {}", model.report.eps, model.report.params.beta);
//! ```
//!
//! ## Crate map
//!
//! - [`core`]: the paper's contribution — propagation, convex losses,
//!   Theorem 1 calibration, objective perturbation, inference.
//! - [`graph`]: CSR adjacency, normalizations, homophily, generators.
//! - [`linalg`]: dense matrix substrate.
//! - [`nn`]: manual-gradient MLP stack (encoder + baseline heads).
//! - [`dp`]: mechanisms, Erlang/sphere sampling, RDP accountant.
//! - [`datasets`]: Table II stand-ins, splits, metrics.
//! - [`baselines`]: DP-SGD, DPGCN, LPGNet, GAP, ProGAP, MLP, non-DP GCN.

pub use gcon_baselines as baselines;
pub use gcon_core as core;
pub use gcon_datasets as datasets;
pub use gcon_dp as dp;
pub use gcon_graph as graph;
pub use gcon_linalg as linalg;
pub use gcon_nn as nn;

/// The most common imports for using GCON end to end.
pub mod prelude {
    pub use gcon_core::infer::{private_predict, public_predict};
    pub use gcon_core::train::train_gcon;
    pub use gcon_core::{GconConfig, LossKind, PropagationStep, TrainedGcon};
    pub use gcon_datasets::metrics::micro_f1;
    pub use gcon_datasets::Dataset;
    pub use gcon_graph::Graph;
    pub use gcon_linalg::Mat;
}
