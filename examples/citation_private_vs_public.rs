#![allow(clippy::field_reassign_with_default)] // config knobs read clearer as assignments
//! Citation-graph scenario (Figures 2 vs 3 of the paper): how much utility
//! does *private inference* (each query node may only use its own edges,
//! Eq. 16) give up compared to a *public test graph* (full propagation), and
//! how does the propagation depth m₁ interact with the restart probability α?
//!
//! ```text
//! cargo run --release --example citation_private_vs_public
//! ```

use gcon::core::infer::{private_predict, public_predict};
use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The Cora-ML stand-in at 15% scale (see gcon-datasets for the Table II
    // fidelity claim at scale 1.0).
    let dataset = gcon::datasets::cora_ml(0.15, 3);
    let delta = dataset.default_delta();
    let eps = 1.0;
    println!(
        "dataset: {} — {} nodes, {} edges, {} classes",
        dataset.name,
        dataset.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );
    println!("budget: ε = {eps}, δ = {delta:.2e}\n");

    let score = |pred: &[usize]| {
        let test: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
        micro_f1(&test, &dataset.test_labels())
    };

    println!("{:>8} {:>6} | {:>9} | {:>9} | {:>10}", "m₁", "α", "private", "public", "Ψ(Z)");
    for &alpha in &[0.4, 0.8] {
        for m1 in [
            PropagationStep::Finite(1),
            PropagationStep::Finite(2),
            PropagationStep::Finite(10),
            PropagationStep::Infinite,
        ] {
            let mut cfg = GconConfig::default();
            cfg.alpha = alpha;
            cfg.alpha_inference = alpha;
            cfg.steps = vec![m1];
            let mut rng = StdRng::seed_from_u64(11);
            let model = train_gcon(
                &cfg,
                &dataset.graph,
                &dataset.features,
                &dataset.labels,
                &dataset.split.train,
                dataset.num_classes,
                eps,
                delta,
                &mut rng,
            );
            let f_priv = score(&private_predict(&model, &dataset.graph, &dataset.features));
            let f_pub = score(&public_predict(&model, &dataset.graph, &dataset.features));
            println!(
                "{:>8} {:>6} | {:>9.3} | {:>9.3} | {:>10.3}",
                format!("{m1}"),
                alpha,
                f_priv,
                f_pub,
                model.report.psi_z
            );
        }
    }
    println!("\nReading: larger m₁ raises the sensitivity Ψ(Z) (more noise) but");
    println!("aggregates a wider neighborhood; small α amplifies both effects —");
    println!("the trade-off Figures 2 and 3 chart.");
}
