//! Networked serving: run a `gcond` server in-process, persist its store,
//! restart from the file at O(open) cost, and query it over TCP with
//! `GconClient` — bitwise identical to in-process inference.
//!
//! ```text
//! cargo run --release --example networked_serving
//! ```

use gcon::prelude::*;
use gcon::serve::{GconClient, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    // 1. Train and freeze a store, exactly as the in-process example does.
    let dataset = gcon::datasets::two_moons_graph(42);
    let mut rng = StdRng::seed_from_u64(0);
    let model = train_gcon(
        &GconConfig::default(),
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        2.0,
        dataset.default_delta(),
        &mut rng,
    );
    let t = Instant::now();
    let built = ServingModel::build(&model, &dataset.graph, &dataset.features, ServingMode::Public);
    println!("ServingModel::build (full propagation): {:?}", t.elapsed());

    // 2. Persist the store and restart from the file: the reload does no
    //    propagation at all, so it is orders of magnitude cheaper.
    let path = std::env::temp_dir().join("networked_serving_example.gconstore");
    built.save(&path).expect("saving store");
    let t = Instant::now();
    let store = ServingModel::load(&path).expect("loading store");
    println!("ServingModel::load (O(open) restart):   {:?}", t.elapsed());
    assert_eq!(
        store.store_f64().unwrap().as_slice(),
        built.store_f64().unwrap().as_slice(),
        "the restored store is bitwise the built one"
    );

    // 3. Serve it on an ephemeral loopback port.
    let server = Server::bind(&store, ServerConfig::default(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        scope.spawn(|| server.run().expect("server run"));

        // 4. Handshake: the server announces what it serves.
        let mut client = GconClient::connect(addr).expect("connect");
        let info = *client.info();
        println!(
            "connected to {addr}: {} nodes, {} classes, {:?}/{:?} store",
            info.nodes, info.classes, info.mode, info.dtype
        );

        // 5. Remote answers are bitwise the local ones — single queries and
        //    a streamed bulk query alike.
        let reference = public_predict(&model, &dataset.graph, &dataset.features);
        for node in [3u64, 141, 59] {
            let logits = client.logits(node).expect("query");
            assert_eq!(logits, store.logits(node as usize));
            assert_eq!(
                gcon::linalg::vecops::argmax(&logits),
                reference[node as usize],
                "remote answer equals one-shot inference"
            );
        }
        let nodes: Vec<u64> = (0..info.nodes).collect();
        let t = Instant::now();
        let bulk = client.logits_bulk(&nodes).expect("bulk query");
        println!("bulk-queried all {} nodes over TCP in {:?}", nodes.len(), t.elapsed());
        for (i, &node) in nodes.iter().enumerate() {
            assert_eq!(bulk.row(i), store.logits(node as usize).as_slice());
        }

        // 6. Health + stats come over the same wire.
        assert!(client.health().expect("health"), "server is healthy");
        let stats = client.stats().expect("stats");
        println!(
            "server stats: {} requests, {} micro-batches (largest {}), {} rejected",
            stats.requests, stats.batches, stats.largest_batch, stats.rejected_overload
        );
        client.bye().expect("bye");
        handle.stop();
    });
    std::fs::remove_file(&path).ok();
    println!("server stopped cleanly");
}
