//! Serving: freeze a trained model into a precomputed feature store and
//! answer node queries at dense-head cost — including micro-batched
//! concurrent queries — bitwise identical to the one-shot inference path.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    // 1. Train a model exactly as in the quickstart.
    let dataset = gcon::datasets::two_moons_graph(42);
    let mut rng = StdRng::seed_from_u64(0);
    let model = train_gcon(
        &GconConfig::default(),
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        2.0,
        dataset.default_delta(),
        &mut rng,
    );

    // 2. One-shot inference recomputes full-graph propagation per call —
    //    answering one node costs the same as answering all of them.
    let t = Instant::now();
    let reference = public_predict(&model, &dataset.graph, &dataset.features);
    println!("one-shot public_predict (all nodes): {:?}", t.elapsed());

    // 3. Build the serving model: the propagation is paid once, here.
    let t = Instant::now();
    let serving =
        ServingModel::build(&model, &dataset.graph, &dataset.features, ServingMode::Public);
    println!("ServingModel::build (one-time):      {:?}", t.elapsed());

    // 4. Queries now index the store and run only the head — and agree with
    //    the one-shot path bit for bit, single or batched, in any order.
    let mut session = serving.session();
    let t = Instant::now();
    let batch = session.predict_batch(&[3, 141, 59, 3]).to_vec();
    println!("served batch {batch:?} in {:?}", t.elapsed());
    assert_eq!(batch, [reference[3], reference[141], reference[59], reference[3]]);
    assert_eq!(serving.predict_all(), reference);

    // 5. Under concurrency, a BatchQueue coalesces single-node requests
    //    into one head forward per window (≤ 32 requests / ≤ 300 µs here).
    let queue = BatchQueue::new(
        &serving,
        BatchConfig { max_batch: 32, max_wait: Duration::from_micros(300) },
    );
    let n = serving.num_nodes();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let queue = &queue;
            let reference = &reference;
            scope.spawn(move || {
                let mut logits = Vec::new();
                for q in 0..50 {
                    let node = (t * 61 + q * 13) % n;
                    queue.query_into(node, &mut logits);
                    assert_eq!(gcon::linalg::vecops::argmax(&logits), reference[node]);
                }
            });
        }
    });
    let stats = queue.stats();
    println!(
        "micro-batcher: {} requests in {} batches (mean batch {:.1}, largest {})",
        stats.requests,
        stats.batches,
        stats.requests as f64 / stats.batches as f64,
        stats.largest_batch,
    );

    // 6. The graph is not frozen forever: a DynamicServingModel applies
    //    edge deltas at O(affected rows) cost and publishes each result as
    //    a new immutable generation — readers never wait on a refresh.
    let dynamic = gcon::serve::DynamicServingModel::build(
        &model,
        dataset.graph.clone(),
        &dataset.features,
        ServingMode::Public,
    );
    let before = dynamic.snapshot(); // generation 0, kept alive across deltas

    let (u, v) = (3u32, n as u32 / 2);
    let mut delta = gcon::graph::CsrDelta::new();
    let had_edge = dataset.graph.neighbors(u).contains(&v);
    if had_edge {
        delta.remove_edge(u, v);
    } else {
        delta.insert_edge(u, v);
    }
    let t = Instant::now();
    let outcome = dynamic.apply_delta(&delta, None);
    println!(
        "apply_delta → generation {} in {:?} ({} of {} rows recomputed, staleness ≤ {:e})",
        outcome.generation,
        t.elapsed(),
        outcome.rows_recomputed,
        n,
        outcome.staleness_bound,
    );

    // The pre-delta snapshot still answers from its frozen store…
    assert_eq!(before.model().predict_all(), reference);
    // …while the new generation equals a from-scratch rebuild on the
    // mutated graph (bitwise for an f64 store; this example only checks
    // predictions so it also runs under GCON_STORE_DTYPE=f32).
    let mutated = if had_edge {
        dataset.graph.with_edge_removed(u, v)
    } else {
        dataset.graph.with_edge_added(u, v)
    };
    let rebuilt = ServingModel::build(&model, &mutated, &dataset.features, ServingMode::Public);
    assert_eq!(dynamic.snapshot().model().predict_all(), rebuilt.predict_all());

    // Round-trip: undo the toggle and the store returns to the original
    // answers.
    let mut undo = gcon::graph::CsrDelta::new();
    if had_edge {
        undo.insert_edge(u, v);
    } else {
        undo.remove_edge(u, v);
    }
    dynamic.apply_delta(&undo, None);
    assert_eq!(dynamic.snapshot().model().predict_all(), reference);
    println!("delta round-trip restored the original predictions (generation 2)");

    // 7. Under an *edit* burst, a DeltaCoalescer plays the BatchQueue role
    //    for mutations: concurrent submits merge into one CsrDelta and pay
    //    one refresh + one published generation per window.
    let gen_before_burst = dynamic.snapshot().generation();
    let coalescer = gcon::serve::DeltaCoalescer::new(
        &dynamic,
        gcon::serve::CoalesceConfig { max_pending: 4, max_delay: Duration::MAX },
    );
    let burst: Vec<(u32, u32, bool)> = (0..4u32)
        .map(|i| {
            let (a, b) = (5 + i, (n as u32 / 2 + 7 * i) % n as u32);
            (a, b, dataset.graph.neighbors(a).contains(&b))
        })
        .collect();
    std::thread::scope(|scope| {
        for &(a, b, present) in &burst {
            let coalescer = &coalescer;
            scope.spawn(move || {
                let mut delta = gcon::graph::CsrDelta::new();
                if present {
                    delta.remove_edge(a, b);
                } else {
                    delta.insert_edge(a, b);
                }
                let outcome = coalescer.submit(delta, None);
                assert_eq!(outcome.generation, gen_before_burst + 1);
            });
        }
    });
    let cstats = coalescer.stats();
    println!(
        "coalesced burst: {} edits in {} window(s) → one generation ({})",
        cstats.edits,
        cstats.windows,
        dynamic.snapshot().generation(),
    );

    // Undo the whole burst the same way — one merged window — and the
    // store returns to the post-round-trip (= original) answers.
    std::thread::scope(|scope| {
        for &(a, b, present) in &burst {
            let coalescer = &coalescer;
            scope.spawn(move || {
                let mut undo = gcon::graph::CsrDelta::new();
                if present {
                    undo.insert_edge(a, b);
                } else {
                    undo.remove_edge(a, b);
                }
                coalescer.submit(undo, None);
            });
        }
    });
    assert_eq!(dynamic.snapshot().model().predict_all(), reference);
    println!("burst round-trip restored the original predictions");

    // A node the store has never seen can still be answered immediately:
    // a batched one-hop gather over its own edges, no store mutation.
    let unseen = gcon::serve::OnboardQuery {
        features: dataset.features.row(7).to_vec(),
        neighbors: dataset.graph.neighbors(7).to_vec(),
    };
    let logits = dynamic.onboard_logits(&[unseen]);
    println!(
        "onboard query answered without a refresh: argmax {}",
        gcon::linalg::vecops::argmax(logits.row(0)),
    );
}
