#![allow(clippy::field_reassign_with_default)] // config knobs read clearer as assignments
//! GCON on a **heterophilous** graph (the paper's Actor scenario): nodes
//! with different labels are wired together, so plain neighbor averaging
//! helps little — the paper responds with multi-scale concatenation
//! (Eq. 11, `s ∈ {1,2,3}` with steps drawn from `{0,1,2,5}`), which lets
//! the model keep the un-propagated features (`m = 0`) alongside one or
//! two smoothed views.
//!
//! This example compares single-scale vs multi-scale GCON on the Actor
//! stand-in (homophily ≈ 0.22) and, as a control, shows why the same
//! concatenation is *not* free on a homophilous graph (Eq. 26 averages the
//! per-scale sensitivities, so adding `m = 0` dilutes the useful scale).
//!
//! ```text
//! cargo run --release --example heterophily_multiscale
//! ```

use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn eval(dataset: &gcon::datasets::Dataset, steps: Vec<PropagationStep>, eps: f64) -> f64 {
    let mut cfg = GconConfig::default();
    cfg.steps = steps;
    cfg.alpha = 0.6;
    cfg.alpha_inference = 0.6;
    // Average over a few seeds: objective-perturbation noise is real noise.
    let runs = 3;
    let mut total = 0.0;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let model = train_gcon(
            &cfg,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            eps,
            dataset.default_delta(),
            &mut rng,
        );
        let pred = private_predict(&model, &dataset.graph, &dataset.features);
        let test: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
        total += micro_f1(&test, &dataset.test_labels());
    }
    total / runs as f64
}

fn main() {
    use PropagationStep::Finite as F;
    let eps = 4.0;
    let configs: [(&str, Vec<PropagationStep>); 4] = [
        ("s=1: {2}", vec![F(2)]),
        ("s=2: {0, 2}", vec![F(0), F(2)]),
        ("s=3: {0, 1, 2}", vec![F(0), F(1), F(2)]),
        ("s=3: {0, 2, 5}", vec![F(0), F(2), F(5)]),
    ];

    type Maker = fn(f64, u64) -> gcon::datasets::Dataset;
    for (name, make) in [
        ("actor (heterophilous)", gcon::datasets::actor as Maker),
        ("cora-ml (homophilous)", gcon::datasets::cora_ml as Maker),
    ] {
        let dataset = make(0.25, 7);
        let stats = dataset.stats();
        println!(
            "\n{name}: n={}, |E|={}, homophily={:.2}, ε={eps}",
            stats.vertices, stats.edges, stats.homophily
        );
        println!("{:<18} {:>9}", "steps", "micro-F1");
        for (label, steps) in &configs {
            let f1 = eval(&dataset, steps.clone(), eps);
            println!("{label:<18} {f1:>9.3}");
        }
    }
    println!("\nReading: on the heterophilous graph the m = 0 channel (raw");
    println!("features) carries most of the signal, so concatenations that");
    println!("include it compete with or beat single-scale smoothing — the");
    println!("paper's motivation for s > 1 on Actor. On the homophilous");
    println!("control the single smoothed scale wins and adding m = 0 dilutes");
    println!("it (Eq. 11 weights every scale by 1/s).");
}
