//! Quickstart: train GCON under edge-level differential privacy and inspect
//! the privacy report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A small homophilous node-classification dataset (240 nodes,
    //    2 classes). In a real deployment this graph's edges are the private
    //    record set — e.g. who-knows-whom.
    let dataset = gcon::datasets::two_moons_graph(42);
    println!("dataset: {} ({:?})", dataset.name, dataset.stats());

    // 2. Configure GCON. The defaults follow the paper's recommendations:
    //    APPR with m₁ = 2 steps, restart probability α = 0.6, ω = 0.9.
    let config = GconConfig::default();

    // 3. Train under (ε = 2, δ = 1/|E|) edge-DP.
    let eps = 2.0;
    let delta = dataset.default_delta();
    let mut rng = StdRng::seed_from_u64(0);
    let model = train_gcon(
        &config,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        eps,
        delta,
        &mut rng,
    );

    // 4. The privacy report: everything Theorem 1 computed.
    println!("\n--- privacy report ---");
    print!("{}", model.report);
    println!(
        "optimizer         : {} iters, final ‖∇‖ = {:.2e}",
        model.opt_iterations, model.final_grad_norm
    );

    // 5. Private inference (Eq. 16): each query node uses only its own edges.
    let pred = private_predict(&model, &dataset.graph, &dataset.features);
    let test_pred: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
    let f1 = micro_f1(&test_pred, &dataset.test_labels());
    println!("\ntest micro-F1 (private inference): {f1:.3}");

    // 6. For comparison: public inference with the full propagation.
    let pred_pub = public_predict(&model, &dataset.graph, &dataset.features);
    let test_pub: Vec<usize> = dataset.split.test.iter().map(|&i| pred_pub[i]).collect();
    println!(
        "test micro-F1 (public inference) : {:.3}",
        micro_f1(&test_pub, &dataset.test_labels())
    );
}
