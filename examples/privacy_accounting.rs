//! Privacy-accounting walkthrough — no training, just the calibration
//! machinery. Shows (i) the full Theorem 1 chain (Eq. 17–24) across budgets
//! and propagation choices, and (ii) why GCON's one-shot budget beats
//! step-composed accounting: the DP-SGD baseline must split ε over every
//! optimization step through the RDP accountant, while GCON's Theorem 1
//! charges the budget once, independent of the optimizer.
//!
//! ```text
//! cargo run --release --example privacy_accounting
//! ```

use gcon::core::loss::{ConvexLoss, LossKind};
use gcon::core::params::{CalibrationInput, TheoremOneParams};
use gcon::core::sensitivity::psi_zm;
use gcon::core::PropagationStep;
use gcon::dp::rdp::{calibrate_noise_multiplier, RdpAccountant};

fn main() {
    let loss = ConvexLoss::new(LossKind::MultiLabelSoftMargin, 7);
    let base = CalibrationInput {
        eps: 1.0,
        delta: 1e-4,
        omega: 0.9,
        lambda: 0.2,
        n1: 2995,
        num_classes: 7,
        dim: 16,
        bounds: loss.bounds(),
        psi: 0.0, // set per row below
    };

    println!("## Theorem 1 chain across ε (α = 0.8, m₁ = 2)");
    println!("{:>6} | {:>8} | {:>8} | {:>8} | {:>8}", "ε", "β", "Λ̄", "Λ′", "ε_Λ");
    let psi = psi_zm(0.8, PropagationStep::Finite(2));
    for eps in [0.5, 1.0, 2.0, 3.0, 4.0] {
        let p = TheoremOneParams::compute(&CalibrationInput { eps, psi, ..base });
        println!(
            "{eps:>6} | {:>8.3} | {:>8.4} | {:>8.4} | {:>8.4}",
            p.beta, p.lambda_eff, p.lambda_prime, p.eps_lambda
        );
    }

    println!("\n## Sensitivity Ψ(Z_m) (Lemma 2) — the α/m trade-off");
    println!("{:>6} | {:>8} {:>8} {:>8} {:>8}", "α", "m=1", "m=2", "m=10", "m=∞");
    for alpha in [0.2, 0.4, 0.6, 0.8] {
        let row: Vec<f64> = [
            PropagationStep::Finite(1),
            PropagationStep::Finite(2),
            PropagationStep::Finite(10),
            PropagationStep::Infinite,
        ]
        .iter()
        .map(|&m| psi_zm(alpha, m))
        .collect();
        println!("{alpha:>6} | {:>8.3} {:>8.3} {:>8.3} {:>8.3}", row[0], row[1], row[2], row[3]);
    }

    println!("\n## One-shot (GCON) vs step-composed (DP-SGD) accounting at ε = 1");
    println!("GCON: Theorem 1 charges the whole ε once — any number of Adam");
    println!("steps is free. DP-SGD must compose per step (RDP accountant):");
    println!("{:>8} | {:>14} | {:>22}", "steps", "noise mult σ̂", "achieved ε (δ=1e-4)");
    for steps in [10usize, 40, 160, 640] {
        let nm = calibrate_noise_multiplier(1.0, steps, 1.0, 1e-4);
        let mut acc = RdpAccountant::new();
        acc.compose_gaussian(nm, steps);
        println!("{steps:>8} | {nm:>14.3} | {:>22.4}", acc.epsilon(1e-4));
    }
    println!("\nReading: 64× more steps costs DP-SGD ≈8× more noise per step,");
    println!("while GCON's perturbation is fixed — the structural advantage the");
    println!("paper's Remark after Theorem 1 points out.");
}
