//! Social-network scenario from the paper's introduction: a platform wants
//! to release a node-classification model (e.g. interest prediction) trained
//! on its *private friendship graph*. A user's political-group membership
//! must not be inferable from the released parameters.
//!
//! This example sweeps the privacy budget ε and compares GCON with the two
//! reference points that bracket it: the edge-free MLP (privacy for free,
//! no graph signal) and the non-private GCN (all signal, no privacy).
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use gcon::baselines::{evaluate_baseline, Baseline};
use gcon::prelude::*;
use gcon_graph::generators::{sbm_homophily, SbmConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A mid-sized "friendship graph": 1200 users, 4 interest communities,
    // strongly homophilous wiring (friends share interests), heavy-tailed
    // degrees (influencers).
    let mut rng = StdRng::seed_from_u64(7);
    let (graph, labels) = sbm_homophily(
        &SbmConfig {
            n: 1200,
            num_edges: 4800,
            num_classes: 4,
            homophily: 0.82,
            degree_exponent: 2.2,
        },
        &mut rng,
    );
    // Sparse profile features with partial class signal (bios, likes, …).
    let d0 = 128;
    let block = d0 / 4;
    let features = Mat::from_fn(1200, d0, |i, j| {
        let in_sig = (labels[i] * block..(labels[i] + 1) * block).contains(&j);
        let h = ((i * 2654435761 + j * 40503) % 1000) as f64 / 1000.0;
        if (in_sig && h < 0.22) || (!in_sig && h < 0.02) {
            1.0
        } else {
            0.0
        }
    });
    // Proportional split as in the paper's Actor setup (Appendix P).
    let split = gcon::datasets::splits::proportional_split(1200, 0.3, 0.2, &mut rng);
    let dataset =
        Dataset { name: "social-network".into(), graph, features, labels, num_classes: 4, split };
    dataset.validate();
    let delta = dataset.default_delta();
    println!(
        "friendship graph: {} users, {} private edges, homophily {:.2}",
        dataset.num_nodes(),
        dataset.graph.num_edges(),
        dataset.stats().homophily
    );

    let score = |pred: &[usize]| {
        let test: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
        micro_f1(&test, &dataset.test_labels())
    };

    // Reference points.
    let mut rng = StdRng::seed_from_u64(8);
    let mlp_f1 = evaluate_baseline(Baseline::Mlp, &dataset, 1.0, delta, &mut rng);
    let mut rng = StdRng::seed_from_u64(9);
    let gcn_f1 = evaluate_baseline(Baseline::GcnNonDp, &dataset, 1.0, delta, &mut rng);
    println!("\nMLP (edge-free, any ε)   : {mlp_f1:.3}");
    println!("GCN (non-private ceiling): {gcn_f1:.3}");

    // GCON configuration for this graph: a wider encoder (d₁ = 32), a
    // moderate restart probability with m₁ = 5 APPR steps, and a small
    // inference-time α_I so the one-hop private aggregation (Eq. 16) leans
    // on the (clean, homophilous) neighborhood.
    let mut cfg = GconConfig::default();
    cfg.encoder.d1 = 32;
    cfg.alpha = 0.4;
    cfg.alpha_inference = 0.2;
    cfg.steps = vec![PropagationStep::Finite(5)];

    println!("\nGCON under edge-DP (private inference):");
    println!("{:>6} | {:>8} | {:>10} | {:>8}", "ε", "micro-F1", "β (noise)", "Ψ(Z)");
    for eps in [0.5, 1.0, 2.0, 4.0] {
        let mut rng = StdRng::seed_from_u64(10);
        let model = train_gcon(
            &cfg,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            eps,
            delta,
            &mut rng,
        );
        let f1 = score(&private_predict(&model, &dataset.graph, &dataset.features));
        println!(
            "{eps:>6} | {f1:>8.3} | {:>10.3} | {:>8.3}",
            model.report.params.beta, model.report.psi_z
        );
    }
    println!("\nReading: GCON climbs from near the MLP floor toward the");
    println!("non-private GCN ceiling as ε grows — the Figure 1 shape.");
}
