#![allow(clippy::field_reassign_with_default)] // config knobs read clearer as assignments
//! The threat that motivates the paper: **edge-inference attacks**. A
//! released model's outputs leak who-is-connected-to-whom because graph
//! convolution smooths predictions along edges (He et al., USENIX Sec. '21;
//! LinkTeller, S&P '22).
//!
//! This example mounts the posterior-similarity link attack against
//! (a) the non-private GCN and (b) GCON trained at several ε, and reports
//! the attack AUC (0.5 = the adversary learns nothing).
//!
//! ```text
//! cargo run --release --example link_attack
//! ```

use gcon::baselines::attack::{influence_attack_auc, posterior_similarity_attack_auc};
use gcon::baselines::gcn::{train_gcn, GcnConfig};
use gcon::core::infer::private_logits;
use gcon::prelude::*;
use gcon_graph::normalize::symmetric;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = gcon::datasets::cora_ml(0.15, 3);
    println!(
        "dataset: {} — {} nodes, {} private edges",
        dataset.name,
        dataset.num_nodes(),
        dataset.graph.num_edges()
    );

    let pairs = 400;
    let test_f1 = |pred: &[usize]| {
        let t: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
        micro_f1(&t, &dataset.test_labels())
    };

    // (a) Non-private GCN: full utility, full leakage.
    let mut rng = StdRng::seed_from_u64(1);
    let gcn = train_gcn(
        &GcnConfig::default(),
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        &mut rng,
    );
    let a_hat = symmetric(&dataset.graph);
    let gcn_logits = gcn.forward(&a_hat, &dataset.features);
    let gcn_auc = posterior_similarity_attack_auc(&gcn_logits, &dataset.graph, pairs, &mut rng);
    // The LinkTeller-style influence attack treats the released model as a
    // black box: nudge u's features, watch v's logits. The non-private GCN's
    // forward pass routes influence along every private edge.
    let gcn_infl = influence_attack_auc(
        &dataset.features,
        &dataset.graph,
        |feat| gcn.forward(&a_hat, feat),
        80,
        &mut rng,
    );
    let gcn_pred = gcon::linalg::reduce::row_argmax(&gcn_logits);
    println!("\n{:<22} {:>9} {:>12} {:>14}", "model", "micro-F1", "posterior AUC", "influence AUC");
    println!(
        "{:<22} {:>9.3} {:>12.3} {:>14.3}",
        "GCN (non-DP)",
        test_f1(&gcn_pred),
        gcn_auc,
        gcn_infl
    );

    // (b) GCON at decreasing privacy budgets.
    for eps in [4.0, 1.0, 0.5] {
        let mut cfg = GconConfig::default();
        cfg.alpha = 0.8;
        cfg.alpha_inference = 0.8;
        let mut rng = StdRng::seed_from_u64(2);
        let model = train_gcon(
            &cfg,
            &dataset.graph,
            &dataset.features,
            &dataset.labels,
            &dataset.split.train,
            dataset.num_classes,
            eps,
            dataset.default_delta(),
            &mut rng,
        );
        let logits = private_logits(&model, &dataset.graph, &dataset.features);
        let auc = posterior_similarity_attack_auc(&logits, &dataset.graph, pairs, &mut rng);
        // Influence through Θ_priv alone (no graph at inference): the DP
        // guarantee says this path must leak (almost) nothing about edges.
        let infl = influence_attack_auc(
            &dataset.features,
            &dataset.graph,
            |feat| {
                let encoded = model.encoder.encode(feat);
                let s = model.config.steps.len();
                let zero_hop = gcon::linalg::ops::matmul(
                    &gcon::linalg::Mat::hcat_all(&vec![&encoded; s]),
                    &model.theta,
                );
                gcon::linalg::ops::scale(&zero_hop, 1.0 / s as f64)
            },
            80,
            &mut rng,
        );
        let pred = gcon::linalg::reduce::row_argmax(&logits);
        println!(
            "{:<22} {:>9.3} {:>12.3} {:>14.3}",
            format!("GCON (ε = {eps})"),
            test_f1(&pred),
            auc,
            infl
        );
    }
    println!("\nReading: the influence column probes leakage through Θ_priv");
    println!("alone (graph-free forward pass): the GCN's forward pass routes");
    println!("influence along every private edge (AUC ≈ 1), while a model");
    println!("whose release satisfies edge-DP cannot carry edge signal in its");
    println!("parameters beyond e^ε odds (AUC ≈ 0.5).");
    println!("\nFor the posterior column: much of the AUC on a homophilous graph comes from");
    println!("class-level correlation the adversary could infer without any");
    println!("edge (same-class nodes get similar posteriors). What edge-DP");
    println!("bounds is the *marginal* leakage of each individual edge: GCON's");
    println!("(ε, δ) guarantee caps the odds-ratio of any attack on any single");
    println!("edge at e^ε, no matter how clever the attack — the non-private");
    println!("GCN offers no such cap.");
}
