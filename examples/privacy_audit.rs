//! Empirically *audit* the privacy of GCON's objective perturbation: run the
//! mechanism hundreds of times on two neighboring graphs and convert the
//! output distributions into a statistical lower bound on the realized
//! privacy loss (Jagielski-style, Clopper–Pearson-backed).
//!
//! The audit is one-sided: a lower bound above the claimed ε would *prove* a
//! bug; a bound far below ε is expected. To show the harness has teeth, the
//! second table audits a deliberately broken trainer whose noise is scaled
//! away — it gets caught immediately.
//!
//! ```text
//! cargo run --release --example privacy_audit
//! ```

use gcon::core::loss::ConvexLoss;
use gcon::core::model::OptimizerConfig;
use gcon::core::noise::sample_noise_matrix;
use gcon::core::objective::PerturbedObjective;
use gcon::core::params::{CalibrationInput, TheoremOneParams};
use gcon::core::propagation::{concat_features, PropagationStep};
use gcon::core::sensitivity::psi_z;
use gcon::core::train::minimize;
use gcon::core::LossKind;
use gcon::dp::audit::{audit_eps_lower_bound, AuditConfig};
use gcon::graph::normalize::row_stochastic_default;
use gcon::linalg::{ops, Mat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A small graph pair differing in one random edge (Definition 2).
    let mut rng = StdRng::seed_from_u64(7);
    let n = 24;
    let g = gcon::graph::generators::erdos_renyi_gnm(n, 55, &mut rng);
    let edges = g.edges();
    let (u, v) = edges[rng.gen_range(0..edges.len())];
    let g_prime = g.with_edge_removed(u, v);
    println!("auditing on a {n}-node graph; D' removes edge ({u}, {v})\n");

    let mut x = Mat::uniform(n, 4, 1.0, &mut rng);
    x.normalize_rows_l2();
    let c = 2;
    let mut y = Mat::zeros(n, c);
    for i in 0..n {
        y.set(i, i % c, 1.0);
    }
    let alpha = 0.6;
    let steps = [PropagationStep::Finite(2)];
    let z = concat_features(&row_stochastic_default(&g), &x, alpha, &steps);
    let zp = concat_features(&row_stochastic_default(&g_prime), &x, alpha, &steps);

    let loss_kind = LossKind::MultiLabelSoftMargin;
    let run_once = |zm: &Mat, lambda_total: f64, beta: f64, dir: &Mat, rng: &mut StdRng| {
        let b = sample_noise_matrix(zm.cols(), c, beta, rng);
        let obj = PerturbedObjective::new(zm, &y, ConvexLoss::new(loss_kind, c), lambda_total, &b);
        let opt = OptimizerConfig { lr: 0.1, max_iters: 4000, grad_tol: 1e-9 };
        let (theta, _, _) = minimize(&obj, Mat::zeros(zm.cols(), c), &opt);
        ops::frobenius_inner(&theta, dir)
    };

    println!("{:<28} {:>9} {:>12} {:>12}", "mechanism", "claimed ε", "audit ε_lb", "verdict");
    for &eps in &[0.5, 1.0, 2.0] {
        let lf = ConvexLoss::new(loss_kind, c);
        let params = TheoremOneParams::compute(&CalibrationInput {
            eps,
            delta: 1e-4,
            omega: 0.9,
            lambda: 0.3,
            n1: n,
            num_classes: c,
            dim: z.cols(),
            bounds: lf.bounds(),
            psi: psi_z(alpha, &steps),
        });
        // The adversary's best projection: the noiseless D/D' difference.
        let zero = Mat::zeros(z.cols(), c);
        let lt = params.lambda_total();
        let opt = OptimizerConfig { lr: 0.1, max_iters: 4000, grad_tol: 1e-9 };
        let t_d = minimize(
            &PerturbedObjective::new(&z, &y, ConvexLoss::new(loss_kind, c), lt, &zero),
            Mat::zeros(z.cols(), c),
            &opt,
        )
        .0;
        let t_dp = minimize(
            &PerturbedObjective::new(&zp, &y, ConvexLoss::new(loss_kind, c), lt, &zero),
            Mat::zeros(z.cols(), c),
            &opt,
        )
        .0;
        let mut dir = ops::sub(&t_dp, &t_d);
        let norm = dir.frobenius_norm();
        dir.map_inplace(|w| w / norm);

        let cfg = AuditConfig { trials: 200, delta: 1e-4, alpha: 0.05, thresholds: 24 };
        let r = audit_eps_lower_bound(
            |rng: &mut StdRng| run_once(&z, lt, params.beta, &dir, rng),
            |rng: &mut StdRng| run_once(&zp, lt, params.beta, &dir, rng),
            &cfg,
            &mut rng,
        );
        let ok = r.eps_lower_bound <= eps;
        println!(
            "{:<28} {:>9} {:>12.4} {:>12}",
            "GCON (honest β)",
            eps,
            r.eps_lower_bound,
            if ok { "consistent" } else { "VIOLATION" }
        );

        // The broken variant: same pipeline, noise rate scaled by 10⁶
        // (essentially no noise).
        let r_broken = audit_eps_lower_bound(
            |rng: &mut StdRng| run_once(&z, lt, params.beta * 1e6, &dir, rng),
            |rng: &mut StdRng| run_once(&zp, lt, params.beta * 1e6, &dir, rng),
            &cfg,
            &mut rng,
        );
        let caught = r_broken.eps_lower_bound > eps;
        println!(
            "{:<28} {:>9} {:>12.4} {:>12}",
            "broken (β × 10⁶)",
            eps,
            r_broken.eps_lower_bound,
            if caught { "CAUGHT" } else { "missed" }
        );
    }
    println!("\nA lower bound above the claimed ε falsifies the guarantee;");
    println!("the honest mechanism never crosses it, the undernoised one does.");
}
