#![allow(clippy::field_reassign_with_default)] // config knobs read clearer as assignments
//! The paper's deployment story, end to end: a server trains GCON under
//! edge-DP, **publishes** the model artifact, and an untrusted analyst loads
//! it and runs inference — the `(ε, δ)` guarantee covers exactly the
//! published bytes.
//!
//! ```text
//! cargo run --release --example model_release
//! ```

use gcon::core::serialize;
use gcon::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- server side -----------------------------------------------------
    let dataset = gcon::datasets::citeseer(0.2, 11);
    let mut cfg = GconConfig::default();
    cfg.alpha = 0.8;
    cfg.alpha_inference = 0.8;
    let mut rng = StdRng::seed_from_u64(42);
    let eps = 2.0;
    let model = train_gcon(
        &cfg,
        &dataset.graph,
        &dataset.features,
        &dataset.labels,
        &dataset.split.train,
        dataset.num_classes,
        eps,
        dataset.default_delta(),
        &mut rng,
    );
    println!("server: trained GCON on {}", dataset.name);
    println!("{}", model.report);

    let path = std::env::temp_dir().join("gcon_release.bin");
    serialize::save(&model, &path).expect("write model artifact");
    let artifact_size = std::fs::metadata(&path).unwrap().len();
    println!("server: published {} ({artifact_size} bytes)\n", path.display());

    // ---- analyst side ----------------------------------------------------
    // The analyst has the artifact, the public features, and their own edges.
    let loaded = serialize::load(&path).expect("read model artifact");
    assert_eq!(loaded.theta.as_slice(), model.theta.as_slice());

    let pred = private_predict(&loaded, &dataset.graph, &dataset.features);
    let test_pred: Vec<usize> = dataset.split.test.iter().map(|&i| pred[i]).collect();
    let f1 = micro_f1(&test_pred, &dataset.test_labels());
    println!("analyst: loaded model, private inference micro-F1 = {f1:.3}");
    println!(
        "analyst: guarantee in the artifact: (ε = {}, δ = {:.2e}) edge-DP",
        loaded.report.eps, loaded.report.delta
    );
    println!("\nEverything the analyst received — Θ_priv, the encoder, the");
    println!("hyperparameters — is covered by the DP guarantee; retraining,");
    println!("fine-tuning or probing the artifact cannot extract more than");
    println!("e^ε odds about any single edge of the training graph.");

    std::fs::remove_file(&path).ok();
}
